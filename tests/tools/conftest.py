"""Make the in-repo ``tools/`` packages importable for the lint tests."""

import sys
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parents[2] / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

"""Per-rule fixture tests for reprolint.

Every rule gets (at least) one violating fixture — asserting detection,
rule code, and the exact line — and one clean fixture asserting no false
positive.  The fixtures are distilled from the real engine code shapes in
``core/batch.py`` / ``sim/flood.py`` / ``adversary/``, so seeding the
corresponding de-optimization into a scratch copy of the engine is
exactly what these snippets simulate.
"""

import textwrap

import pytest

from reprolint import lint_source
from reprolint.rules import ALL_RULES, RULES_BY_CODE

BATCH = "src/repro/core/batch.py"
FLOOD = "src/repro/sim/flood.py"
SWEEP = "src/repro/core/sweep.py"
STRATEGIES = "src/repro/adversary/strategies.py"


def lint(source, path, code):
    """Lint dedented ``source`` as ``path`` with the single rule ``code``."""
    return lint_source(
        textwrap.dedent(source), path, rules=[RULES_BY_CODE[code]]
    )


def test_rule_registry_complete():
    assert [rule.code for rule in ALL_RULES] == [
        "R001",
        "R002",
        "R003",
        "R004",
        "R005",
        "R006",
    ]
    assert all(rule.summary for rule in ALL_RULES)


# ----------------------------------------------------------------------
# R001 - no scalar Python loops over trials/nodes in the hot path.
# ----------------------------------------------------------------------
class TestR001:
    def test_per_trial_loop_inside_round_loop(self):
        # The canonical de-optimization: per-trial scalar work inside the
        # flooding round loop that neighbor_max_stacked exists to batch.
        findings = lint(
            """
            def _run_batched_group(kernel, phase, cur, sent, b_live):
                for t in range(1, phase + 1):
                    for trial in range(b_live):
                        sent[:, trial] = cur[:, trial]
            """,
            BATCH,
            "R001",
        )
        assert len(findings) == 1
        assert findings[0].code == "R001"
        assert findings[0].line == 4

    def test_per_node_loop_in_kernel_method(self):
        findings = lint(
            """
            class FloodKernel:
                def neighbor_max(self, sent, out=None):
                    for v in range(self.n):
                        out[v] = max(sent[u] for u in self.neighbors(v))
                    return out
            """,
            FLOOD,
            "R001",
        )
        assert [f.line for f in findings] == [4]

    def test_while_loop_inside_round_loop(self):
        findings = lint(
            """
            def _run(phase, recv, kernel, sent):
                for t in range(1, phase + 1):
                    row = 0
                    while row < 8:
                        row += 1
            """,
            BATCH,
            "R001",
        )
        assert [f.line for f in findings] == [5]

    def test_clean_real_round_loop_shape(self):
        # Distilled from _run_byzantine_batched_group: plan-structure
        # loops inside rounds are legal, as is per-trial work at
        # subphase level and the per-slot gather in the stacked kernel.
        findings = lint(
            """
            def _run(phase, live, groups_by_round, suppress_pairs, kernel, sent, recv):
                for row, trial in enumerate(live):
                    pass
                for t in range(1, phase + 1):
                    for nodes, cols, vals in groups_by_round[t]:
                        pass
                    for nodes_g, cols_g in suppress_pairs:
                        pass
                    kernel.neighbor_max_stacked(sent, out=recv)
            """,
            BATCH,
            "R001",
        )
        assert findings == []

    def test_clean_degree_slot_loop_in_kernel(self):
        findings = lint(
            """
            class FloodKernel:
                def neighbor_max_stacked(self, values, out=None):
                    cols = self._cols()
                    result = np.maximum(values[cols[0]], values[cols[1]], out=out)
                    for j in range(2, self._uniform_degree):
                        np.maximum(result, values[cols[j]], out=result)
                    return result
            """,
            FLOOD,
            "R001",
        )
        assert findings == []

    def test_out_of_scope_module_not_flagged(self):
        findings = lint(
            """
            def run(phase, n, out):
                for t in range(1, phase + 1):
                    for v in range(n):
                        out[v] += 1
            """,
            "src/repro/core/runner.py",
            "R001",
        )
        assert findings == []


# ----------------------------------------------------------------------
# R002 - int32-with-lazy-widening dtype policy.
# ----------------------------------------------------------------------
class TestR002:
    def test_unconditional_int64_state_allocation(self):
        findings = lint(
            """
            def _run(n, b_live):
                cur = np.empty((n, b_live), dtype=np.int64)
                return cur
            """,
            BATCH,
            "R002",
        )
        assert len(findings) == 1
        assert findings[0].code == "R002"
        assert findings[0].line == 3

    def test_unguarded_astype_widening(self):
        findings = lint(
            """
            def _run(colors):
                colors = colors.astype(np.int64)
                return colors
            """,
            BATCH,
            "R002",
        )
        assert [f.line for f in findings] == [3]

    def test_platform_int_dtype(self):
        findings = lint(
            """
            def _run(n):
                decided = np.zeros(n, dtype=int)
                return decided
            """,
            BATCH,
            "R002",
        )
        assert [f.line for f in findings] == [3]
        assert findings[0].autofixable

    def test_clean_guarded_widening_block(self):
        # The real lazy-widening site: int64 state is legal under the
        # _INT32_MAX overflow guard and inside _normalize_batch_plan.
        findings = lint(
            """
            def _run(plan_max, plan_min, state_dtype, colors, n, b_live):
                if (
                    plan_max > _INT32_MAX or plan_min < _INT32_MIN
                ) and state_dtype == np.int32:
                    state_dtype = np.int64
                    colors = colors.astype(np.int64)
                    cur = np.empty((n, b_live), dtype=np.int64)
                    sent = np.empty_like(cur)


            def _normalize_batch_plan(plan, byz_count, batch):
                initial = np.asarray(plan.initial_colors, dtype=np.int64)
                counts = np.zeros(batch, dtype=np.int64)
                return initial, counts
            """,
            BATCH,
            "R002",
        )
        assert findings == []

    def test_clean_int32_state_and_int64_bookkeeping(self):
        findings = lint(
            """
            def _run(n, b_live, batch, state_dtype):
                cur_t = np.empty((n, b_live), dtype=np.int32)
                colors = np.zeros((n, b_live), dtype=state_dtype)
                senders = np.zeros(b_live, dtype=np.int64)
                decided = np.full((batch, n), UNDECIDED, dtype=np.int64)
            """,
            BATCH,
            "R002",
        )
        assert findings == []

    def test_scalar_engine_module_not_flagged(self):
        # runner.py's scalar engine is int64 by design.
        findings = lint(
            """
            def run_counting(n):
                colors = np.zeros(n, dtype=np.int64)
                cur = np.zeros(n, dtype=np.int64)
            """,
            "src/repro/core/runner.py",
            "R002",
        )
        assert findings == []


# ----------------------------------------------------------------------
# R003 - no array allocation inside per-round loops.
# ----------------------------------------------------------------------
class TestR003:
    def test_allocation_inside_round_loop(self):
        findings = lint(
            """
            def _run(phase, n, b_live, kernel, cur):
                for t in range(1, phase + 1):
                    recv = np.empty((n, b_live), dtype=np.int32)
                    kernel.neighbor_max_stacked(cur, out=recv)
            """,
            BATCH,
            "R003",
        )
        assert len(findings) == 1
        assert findings[0].code == "R003"
        assert findings[0].line == 4

    def test_concatenate_inside_round_loop(self):
        findings = lint(
            """
            def _run(phase, parts):
                for t in range(1, phase + 1):
                    sent = np.concatenate(parts)
            """,
            FLOOD,
            "R003",
        )
        assert [f.line for f in findings] == [4]

    def test_clean_preallocated_round_loop(self):
        # The real shape: buffers allocated at subphase setup, rounds
        # update them in place.
        findings = lint(
            """
            def _run(phase, n, b_live, kernel):
                cur = np.empty((n, b_live), dtype=np.int32)
                recv = np.empty((n, b_live), dtype=np.int32)
                for t in range(1, phase + 1):
                    kernel.neighbor_max_stacked(cur, out=recv)
                    np.maximum(cur, recv, out=cur)
            """,
            BATCH,
            "R003",
        )
        assert findings == []

    def test_clean_subphase_level_allocation(self):
        findings = lint(
            """
            def _run(n_sub, b_live, counts_g):
                for sub in range(1, n_sub + 1):
                    for t, cnts in counts_g.items():
                        acc = np.zeros(b_live, dtype=np.int64)
            """,
            BATCH,
            "R003",
        )
        assert findings == []


# ----------------------------------------------------------------------
# R004 - Adversary subclasses must port the batch protocol.
# ----------------------------------------------------------------------
class TestR004:
    def test_scalar_only_subphase_plan(self):
        findings = lint(
            """
            class BurstAdversary(Adversary):
                def subphase_plan(self, state):
                    return SubphasePlan(initial_colors=None, injections=[])
            """,
            STRATEGIES,
            "R004",
        )
        assert len(findings) == 1
        assert findings[0].code == "R004"
        assert findings[0].line == 2
        assert "batch_subphase_plan" in findings[0].message

    def test_scalar_only_topology_claims(self):
        findings = lint(
            """
            class QuietLiarAdversary(Adversary):
                def topology_claims(self):
                    return {}

                def subphase_plan(self, state):
                    return None

                def batch_subphase_plan(self, state):
                    return None
            """,
            STRATEGIES,
            "R004",
        )
        assert [f.line for f in findings] == [2]
        assert "batch_topology_claims" in findings[0].message

    def test_clean_paired_hooks(self):
        # The real strategy shape: every scalar hook has its batch twin,
        # and overriding only bind() is fine (bind_batch delegates).
        findings = lint(
            """
            class TopologyLiarAdversary(Adversary):
                def bind(self, network, byz_mask, rng, config):
                    super().bind(network, byz_mask, rng, config)

                def topology_claims(self):
                    return self._claims

                def batch_topology_claims(self):
                    return [self._claims]

                def subphase_plan(self, state):
                    return SubphasePlan()

                def batch_subphase_plan(self, state):
                    return BatchSubphasePlan()
            """,
            STRATEGIES,
            "R004",
        )
        assert findings == []

    def test_clean_no_overrides_and_wrapper(self):
        findings = lint(
            """
            class HonestAdversary(Adversary):
                name = "honest"


            class PerColumn(PerTrialAdversaryBatch):
                def subphase_plan(self, state):
                    return None
            """,
            STRATEGIES,
            "R004",
        )
        assert findings == []

    def test_disable_comment_escape_hatch(self):
        findings = lint(
            """
            class LegacyAdversary(Adversary):  # reprolint: disable=R004
                def subphase_plan(self, state):
                    return None
            """,
            STRATEGIES,
            "R004",
        )
        assert findings == []


# ----------------------------------------------------------------------
# R005 - Generator-only RNG discipline.
# ----------------------------------------------------------------------
class TestR005:
    def test_default_rng_call(self):
        findings = lint(
            """
            def run(scale, seed):
                rng = np.random.default_rng(seed)
                return rng
            """,
            "src/repro/experiments/e12_figure1.py",
            "R005",
        )
        assert len(findings) == 1
        assert findings[0].code == "R005"
        assert findings[0].line == 3

    def test_legacy_global_state_calls(self):
        findings = lint(
            """
            def run(n):
                np.random.seed(0)
                return np.random.randint(0, n)
            """,
            "src/repro/core/coreset.py",
            "R005",
        )
        assert [f.line for f in findings] == [3, 4]

    def test_clean_generator_annotations_and_isinstance(self):
        # Type annotations and isinstance checks mention np.random but
        # call nothing; make_rng-produced Generators draw freely.
        findings = lint(
            """
            def run(seed: int | np.random.Generator | None = 0):
                if isinstance(seed, np.random.Generator):
                    return seed
                rng = make_rng(seed)
                return int(rng.integers(8))
            """,
            "src/repro/core/sweep.py",
            "R005",
        )
        assert findings == []

    def test_rng_module_exempt(self):
        findings = lint(
            """
            def make_rng(seed):
                return np.random.default_rng(np.random.SeedSequence([0, seed]))
            """,
            "src/repro/sim/rng.py",
            "R005",
        )
        assert findings == []


# ----------------------------------------------------------------------
# R006 - eager validation before array compute in entry points.
# ----------------------------------------------------------------------
class TestR006:
    def test_compute_before_validation(self):
        findings = lint(
            """
            def run_counting_batch(network, seeds, config=None, byz_mask=None):
                byz_bn = np.zeros((len(seeds), network.n), dtype=bool)
                configs = _normalize_configs(config, len(seeds))
                return configs, byz_bn
            """,
            BATCH,
            "R006",
        )
        assert len(findings) == 1
        assert findings[0].code == "R006"
        assert findings[0].line == 3
        assert "before its first validator" in findings[0].message

    def test_missing_validator(self):
        findings = lint(
            """
            def run_sweep(network, seeds):
                return np.zeros(len(seeds))
            """,
            SWEEP,
            "R006",
        )
        assert [f.line for f in findings] == [2]
        assert "never calls a typed validator" in findings[0].message

    def test_clean_validate_first(self):
        # The real entry-point shape: typed normalizers run before the
        # first np.* call (raises aside, which are not array compute).
        findings = lint(
            """
            def run_counting_batch(network, seeds, config=None, byz_mask=None):
                seeds = list(seeds)
                batch = len(seeds)
                configs = _normalize_configs(config, batch)
                byz_bn = _normalize_byz_masks(byz_mask, batch, network.n)
                if byz_bn is None:
                    byz_bn = np.zeros((batch, network.n), dtype=bool)
                return configs, byz_bn
            """,
            BATCH,
            "R006",
        )
        assert findings == []

    def test_non_entry_point_not_checked(self):
        findings = lint(
            """
            def _run_batched_group(network, seeds, config):
                return np.zeros(len(seeds))
            """,
            BATCH,
            "R006",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Cross-cutting: suppression comments and real-tree sanity.
# ----------------------------------------------------------------------
class TestSuppression:
    SOURCE = """
    def _run(n, b_live):
        cur = np.empty((n, b_live), dtype=np.int64)  # reprolint: disable=R002
        # reprolint: disable=R002
        sent = np.empty((n, b_live), dtype=np.int64)
        recv = np.empty((n, b_live), dtype=np.int64)
    """

    def test_same_line_and_preceding_comment(self):
        findings = lint(self.SOURCE, BATCH, "R002")
        assert [f.line for f in findings] == [6]

    def test_disable_all(self):
        findings = lint(
            """
            def _run(n):
                cur = np.empty(n, dtype=np.int64)  # reprolint: disable=all
            """,
            BATCH,
            "R002",
        )
        assert findings == []

    def test_disable_other_code_does_not_suppress(self):
        findings = lint(
            """
            def _run(n):
                cur = np.empty(n, dtype=np.int64)  # reprolint: disable=R001
            """,
            BATCH,
            "R002",
        )
        assert [f.line for f in findings] == [3]


# ----------------------------------------------------------------------
# Path-scoped rule exemptions (PATH_RULE_EXEMPTIONS).
# ----------------------------------------------------------------------
class TestPathScopedExemptions:
    # A compiled-kernel shape: a scalar loop over node rows plus a fresh
    # per-call buffer — both R001 and R003 violations anywhere else in
    # the hot path, both the *point* of a backend module.
    KERNEL_SNIPPET = """
        import numpy as np

        def _stacked_csr(values, indptr, indices, out):
            n = out.shape[0]
            for v in range(n):
                out[v] = values[indices[indptr[v]]]

        def neighbor_max_stacked(kernel, values, out=None):
            buf = np.empty(values.shape, dtype=values.dtype)
            return buf
        """
    BACKEND = "src/repro/sim/backends/numba_backend.py"

    def test_rules_fire_on_backend_modules_without_the_exemption(self):
        # The rules themselves treat every backend function as kernel
        # scope — checked directly so the exemption is proven to be
        # load-bearing, not suppressing nothing.
        from reprolint.engine import ModuleContext

        ctx = ModuleContext(textwrap.dedent(self.KERNEL_SNIPPET), self.BACKEND)
        assert [f.code for f in RULES_BY_CODE["R001"].check(ctx)] == ["R001"]
        assert [f.code for f in RULES_BY_CODE["R003"].check(ctx)] == ["R003"]

    def test_exemption_suppresses_for_backend_paths(self):
        assert lint_source(textwrap.dedent(self.KERNEL_SNIPPET), self.BACKEND) == []

    def test_other_hot_path_modules_keep_both_rules(self):
        findings = lint(
            """
            import numpy as np

            def _run(rounds, batch, cur):
                for t in range(rounds):
                    recv = np.empty_like(cur)
                    for b in range(batch):
                        recv[b] = cur[b]
            """,
            BATCH,
            "R001",
        ) + lint(
            """
            import numpy as np

            def _run(rounds, cur):
                for t in range(rounds):
                    recv = np.empty_like(cur)
            """,
            BATCH,
            "R003",
        )
        assert sorted({f.code for f in findings}) == ["R001", "R003"]

    def test_exemption_does_not_cover_other_codes(self):
        # Only R001/R003 are path-exempted; the rng discipline still
        # applies to backend modules.
        findings = lint_source(
            textwrap.dedent(
                """
                import numpy as np

                def neighbor_max(kernel, sent):
                    rng = np.random.default_rng(0)
                    return rng
                """
            ),
            self.BACKEND,
        )
        assert [f.code for f in findings] == ["R005"]

    def test_exempt_codes_for_matches_by_fragment(self):
        from reprolint.rules import exempt_codes_for

        assert exempt_codes_for(self.BACKEND) == {"R001", "R003"}
        assert exempt_codes_for("src/repro/core/batch.py") == frozenset()


class TestChaosPathExemption:
    # The chaos harness draws its fault schedule straight from
    # numpy.random so injection decisions can never share (or perturb)
    # the simulation's seed universe — the one module where bypassing
    # repro.sim.rng is the correct design.
    CHAOS = "src/repro/exec/chaos.py"
    SNIPPET = """
        import numpy as np

        def fault_for(seed, index, attempt):
            rng = np.random.default_rng(np.random.SeedSequence([seed, index, attempt]))
            return float(rng.random())
        """

    def test_r005_fires_on_the_shape_without_the_exemption(self):
        # Proves the exemption is load-bearing on a distilled snippet.
        from reprolint.engine import ModuleContext

        ctx = ModuleContext(textwrap.dedent(self.SNIPPET), self.CHAOS)
        findings = RULES_BY_CODE["R005"].check(ctx)
        # default_rng and SeedSequence are flagged separately.
        assert [f.code for f in findings] == ["R005", "R005"]

    def test_r005_fires_on_the_real_module_without_the_exemption(self):
        # And on the shipped source itself: remove the exemption and the
        # linter would flag chaos.py, so the entry is not dead config.
        from pathlib import Path

        from reprolint.engine import ModuleContext

        root = Path(__file__).resolve().parents[2]
        source = (root / self.CHAOS).read_text(encoding="utf-8")
        ctx = ModuleContext(source, self.CHAOS)
        findings = RULES_BY_CODE["R005"].check(ctx)
        assert findings and {f.code for f in findings} == {"R005"}
        assert lint_source(source, self.CHAOS) == []

    def test_exemption_suppresses_only_for_chaos(self):
        assert lint_source(textwrap.dedent(self.SNIPPET), self.CHAOS) == []
        findings = lint_source(
            textwrap.dedent(self.SNIPPET), "src/repro/exec/resilience.py"
        )
        assert findings and {f.code for f in findings} == {"R005"}

    def test_exempt_codes_for_chaos(self):
        from reprolint.rules import exempt_codes_for

        assert exempt_codes_for(self.CHAOS) == {"R005"}
        assert exempt_codes_for("src/repro/exec/checkpoint.py") == frozenset()


@pytest.mark.parametrize(
    "module",
    [
        "src/repro/core/batch.py",
        "src/repro/core/sweep.py",
        "src/repro/sim/flood.py",
        "src/repro/sim/backends/numpy_backend.py",
        "src/repro/sim/backends/numba_backend.py",
        "src/repro/adversary/base.py",
        "src/repro/adversary/strategies.py",
        "src/repro/sim/rng.py",
        "src/repro/exec/resilience.py",
        "src/repro/exec/checkpoint.py",
    ],
)
def test_real_engine_modules_are_clean(module):
    """The shipped engine passes every rule with no suppressions."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    source = (root / module).read_text(encoding="utf-8")
    assert lint_source(source, module) == []

"""CLI and baseline tests: formats, exit codes, grandfathering."""

import io
import json
import subprocess
import sys
import textwrap
from pathlib import Path

from reprolint.baseline import load_baseline, split_findings, write_baseline
from reprolint.cli import main
from reprolint.engine import Finding, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

VIOLATING = textwrap.dedent(
    """
    def _run(n, b_live):
        cur = np.empty((n, b_live), dtype=np.int64)
        rng = np.random.default_rng(0)
    """
)

CLEAN = textwrap.dedent(
    """
    def _run(n, b_live, state_dtype):
        cur = np.empty((n, b_live), dtype=state_dtype)
    """
)


def write_fixture(tmp_path, source, name="batch.py"):
    target = tmp_path / "repro" / "core" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


def run_cli(*argv):
    stream = io.StringIO()
    status = main(list(argv), stream=stream)
    return status, stream.getvalue()


class TestCli:
    def test_exit_one_and_text_format(self, tmp_path):
        target = write_fixture(tmp_path, VIOLATING)
        status, out = run_cli(str(target))
        assert status == 1
        assert f"{target}:3:" in out.replace("\\", "/")
        assert "R002" in out and "R005" in out

    def test_exit_zero_on_clean_tree(self, tmp_path):
        target = write_fixture(tmp_path, CLEAN)
        status, out = run_cli(str(target))
        assert status == 0
        assert "0 finding(s)" in out

    def test_github_format(self, tmp_path):
        target = write_fixture(tmp_path, VIOLATING)
        status, out = run_cli(str(target), "--format", "github")
        assert status == 1
        assert "::error file=" in out
        assert "title=reprolint R002" in out

    def test_json_format(self, tmp_path):
        target = write_fixture(tmp_path, VIOLATING)
        status, out = run_cli(str(target), "--format", "json")
        assert status == 1
        payload = json.loads(out[: out.rindex("]") + 1])
        codes = {entry["code"] for entry in payload}
        assert codes == {"R002", "R005"}
        assert all({"path", "line", "col", "message"} <= set(e) for e in payload)

    def test_select_subset(self, tmp_path):
        target = write_fixture(tmp_path, VIOLATING)
        status, out = run_cli(str(target), "--select", "R005")
        assert status == 1
        assert "R005" in out and "R002" not in out

    def test_directory_walk(self, tmp_path):
        write_fixture(tmp_path, VIOLATING, name="batch.py")
        write_fixture(tmp_path, CLEAN, name="clean_batch.py")
        findings = lint_paths([tmp_path])
        assert {f.code for f in findings} == {"R002", "R005"}

    def test_list_rules(self):
        status, out = run_cli("--list-rules")
        assert status == 0
        for code in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert code in out


class TestBaseline:
    def test_update_then_pass(self, tmp_path):
        target = write_fixture(tmp_path, VIOLATING)
        baseline = tmp_path / "baseline.json"
        status, _ = run_cli(str(target), "--baseline", str(baseline), "--update-baseline")
        assert status == 0
        # Grandfathered findings no longer fail the gate...
        status, out = run_cli(str(target), "--baseline", str(baseline))
        assert status == 0
        assert "2 baselined" in out
        # ...but a fresh violation still does.
        target.write_text(VIOLATING + "    bad = np.random.rand(4)\n", encoding="utf-8")
        status, out = run_cli(str(target), "--baseline", str(baseline))
        assert status == 1
        assert "np.random.rand" in out

    def test_line_drift_invalidates_entry(self, tmp_path):
        target = write_fixture(tmp_path, VIOLATING)
        baseline = tmp_path / "baseline.json"
        run_cli(str(target), "--baseline", str(baseline), "--update-baseline")
        target.write_text("\n" + VIOLATING, encoding="utf-8")
        status, _ = run_cli(str(target), "--baseline", str(baseline))
        assert status == 1

    def test_split_findings_roundtrip(self, tmp_path):
        findings = [
            Finding("a.py", 3, 1, "R002", "x"),
            Finding("a.py", 9, 1, "R005", "y"),
        ]
        baseline = tmp_path / "b.json"
        write_baseline(baseline, findings[:1])
        fresh, old = split_findings(findings, load_baseline(baseline))
        assert [f.code for f in fresh] == ["R005"]
        assert [f.code for f in old] == ["R002"]

    def test_shipped_baseline_is_loadable(self):
        shipped = REPO_ROOT / "tools" / "reprolint" / "baseline.json"
        assert load_baseline(shipped) == set()


def test_module_invocation_on_src_is_clean():
    """The CI gate itself: ``python -m reprolint src/`` exits 0."""
    result = subprocess.run(
        [sys.executable, "-m", "reprolint", "src/", "--format", "github"],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "tools")},
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "::error" not in result.stdout

"""Unit tests for the five Section 1.2 baseline protocols."""

import numpy as np
import pytest

from repro.baselines import (
    run_birthday,
    run_convergecast,
    run_exponential_support,
    run_flooding_diameter,
    run_geometric_max,
)


@pytest.fixture(scope="module")
def net():
    from repro.graphs import build_small_world

    return build_small_world(512, 8, seed=13)


@pytest.fixture(scope="module")
def one_byz(net):
    mask = np.zeros(net.n, dtype=bool)
    mask[100] = True
    return mask


class TestGeometricMax:
    def test_honest_in_band(self, net):
        res = run_geometric_max(net, seed=1)
        assert res.fraction_in_band(0.5, 2.0) >= 0.95

    def test_all_agree_after_saturation(self, net):
        res = run_geometric_max(net, seed=1)
        assert np.unique(res.estimates).size == 1  # everyone saw the max

    def test_distinct_forwards_logarithmic(self, net):
        res = run_geometric_max(net, seed=1)
        assert res.max_distinct_forwards <= 4 * np.log2(net.n)

    def test_fake_max_inflates(self, net, one_byz):
        res = run_geometric_max(net, seed=1, byz_mask=one_byz, attack="fake-max")
        assert res.median_estimate() >= 5 * res.true_log2_n

    def test_custom_fake_value(self, net, one_byz):
        res = run_geometric_max(
            net, seed=1, byz_mask=one_byz, attack="fake-max", fake_value=777
        )
        assert res.median_estimate() == 777

    def test_suppress_absorbed(self, net, one_byz):
        res = run_geometric_max(net, seed=1, byz_mask=one_byz, attack="suppress")
        assert res.fraction_in_band(0.5, 2.0) >= 0.9

    def test_fixed_rounds(self, net):
        res = run_geometric_max(net, seed=1, rounds=2)
        assert res.rounds == 2

    def test_attack_requires_byz(self, net):
        with pytest.raises(ValueError, match="requires"):
            run_geometric_max(net, attack="fake-max")

    def test_unknown_attack(self, net):
        with pytest.raises(ValueError, match="unknown attack"):
            run_geometric_max(net, attack="zap")


class TestExponentialSupport:
    def test_honest_within_factor_two(self, net):
        res = run_exponential_support(net, seed=2, repetitions=16)
        assert res.fraction_within_factor(2.0) >= 0.9

    def test_more_reps_tighter(self, net):
        r4 = run_exponential_support(net, seed=2, repetitions=4)
        r64 = run_exponential_support(net, seed=2, repetitions=64)
        err4 = abs(r4.median_estimate() - net.n) / net.n
        err64 = abs(r64.median_estimate() - net.n) / net.n
        assert err64 <= err4 + 0.05

    def test_tiny_attack_inflates(self, net, one_byz):
        res = run_exponential_support(
            net, seed=2, repetitions=8, byz_mask=one_byz, attack="tiny"
        )
        assert res.median_estimate() > 100 * net.n

    def test_repetitions_validated(self, net):
        with pytest.raises(ValueError):
            run_exponential_support(net, repetitions=0)


class TestConvergecast:
    def test_exact_honest(self, net):
        res = run_convergecast(net)
        assert res.exact
        assert res.count_at_root == net.n
        assert res.rounds == 2 * res.depth + 1

    def test_inflate_attack(self, net, one_byz):
        res = run_convergecast(net, byz_mask=one_byz, attack="inflate", inflate_by=10**6)
        assert res.count_at_root == net.n + 10**6

    def test_zero_attack_erases_subtree(self, net, one_byz):
        res = run_convergecast(net, byz_mask=one_byz, attack="zero")
        assert res.count_at_root < net.n

    def test_byzantine_root_rejected(self, net):
        mask = np.zeros(net.n, dtype=bool)
        mask[0] = True
        with pytest.raises(ValueError, match="root"):
            run_convergecast(net, root=0, byz_mask=mask, attack="inflate")


class TestFloodingDiameter:
    def test_honest_band(self, net):
        res = run_flooding_diameter(net)
        assert res.fraction_in_band(0.25, 4.0) >= 0.95

    def test_arrival_matches_bfs(self, net):
        from repro.graphs.balls import bfs_distances

        res = run_flooding_diameter(net, leader=5)
        assert np.array_equal(
            res.arrival, bfs_distances(net.h.indptr, net.h.indices, 5)
        )

    def test_preflood_deflates(self, net):
        mask = np.zeros(net.n, dtype=bool)
        mask[50:66] = True
        honest = run_flooding_diameter(net)
        attacked = run_flooding_diameter(net, byz_mask=mask, attack="pre-flood")
        assert attacked.median_estimate() < honest.median_estimate()

    def test_byzantine_leader_rejected(self, net):
        mask = np.zeros(net.n, dtype=bool)
        mask[0] = True
        with pytest.raises(ValueError, match="leader"):
            run_flooding_diameter(net, leader=0, byz_mask=mask, attack="pre-flood")


class TestBirthday:
    def test_honest_reasonable(self, net):
        res = run_birthday(net, seed=3)
        assert res.relative_error() < 1.0

    def test_unique_attack_inflates(self, net):
        mask = np.zeros(net.n, dtype=bool)
        mask[::16] = True
        honest = run_birthday(net, seed=3)
        attacked = run_birthday(net, seed=3, byz_mask=mask, attack="unique")
        assert attacked.estimate > honest.estimate
        assert attacked.hijacked > 0

    def test_absorb_attack_deflates(self, net):
        mask = np.zeros(net.n, dtype=bool)
        mask[::16] = True
        attacked = run_birthday(net, seed=3, byz_mask=mask, attack="absorb")
        assert attacked.estimate < net.n / 2

    def test_custom_walk_parameters(self, net):
        res = run_birthday(net, seed=3, walks=50, walk_length=10)
        assert res.walks == 50
        assert res.walk_length == 10

"""Batched baseline estimators must match their scalar counterparts bit
for bit — per seed for the stochastic estimators, per root/leader for the
deterministic ones, attacks included."""

import numpy as np
import pytest

from repro.baselines import (
    run_birthday,
    run_birthday_batch,
    run_convergecast,
    run_convergecast_batch,
    run_exponential_support,
    run_exponential_support_batch,
    run_flooding_diameter,
    run_flooding_diameter_batch,
    run_geometric_max,
    run_geometric_max_batch,
)

SEEDS = [5, 6, 7]
ROOTS = [0, 1, 3]


@pytest.fixture(scope="module")
def one_byz(net_small):
    mask = np.zeros(net_small.n, dtype=bool)
    mask[net_small.n // 2] = True
    return mask


@pytest.fixture(scope="module")
def few_byz(net_small):
    mask = np.zeros(net_small.n, dtype=bool)
    mask[2::8] = True
    return mask


class TestGeometricMaxBatch:
    @pytest.mark.parametrize("attack", [None, "fake-max", "suppress"])
    def test_matches_scalar(self, net_small, one_byz, attack):
        kw = {} if attack is None else {"byz_mask": one_byz, "attack": attack}
        seq = [run_geometric_max(net_small, seed=s, **kw) for s in SEEDS]
        bat = run_geometric_max_batch(net_small, SEEDS, **kw)
        for a, b in zip(seq, bat):
            assert np.array_equal(a.estimates, b.estimates)
            assert a.rounds == b.rounds
            assert a.max_distinct_forwards == b.max_distinct_forwards
            assert a.meter.as_dict() == b.meter.as_dict()

    def test_fixed_rounds(self, net_small):
        seq = [run_geometric_max(net_small, seed=s, rounds=3) for s in SEEDS]
        bat = run_geometric_max_batch(net_small, SEEDS, rounds=3)
        for a, b in zip(seq, bat):
            assert np.array_equal(a.estimates, b.estimates)
            assert a.rounds == b.rounds == 3
            assert a.meter.as_dict() == b.meter.as_dict()

    def test_empty_batch(self, net_small):
        assert run_geometric_max_batch(net_small, []) == []

    def test_unknown_attack_rejected(self, net_small, one_byz):
        with pytest.raises(ValueError, match="unknown attack"):
            run_geometric_max_batch(net_small, SEEDS, byz_mask=one_byz, attack="nope")


class TestExponentialSupportBatch:
    @pytest.mark.parametrize("attack", [None, "tiny", "suppress"])
    def test_matches_scalar(self, net_small, one_byz, attack):
        kw = {} if attack is None else {"byz_mask": one_byz, "attack": attack}
        seq = [
            run_exponential_support(net_small, seed=s, repetitions=4, **kw)
            for s in SEEDS
        ]
        bat = run_exponential_support_batch(net_small, SEEDS, repetitions=4, **kw)
        for a, b in zip(seq, bat):
            assert np.array_equal(a.estimates, b.estimates)
            assert a.rounds == b.rounds


class TestBirthdayBatch:
    @pytest.mark.parametrize("attack", [None, "unique", "absorb"])
    def test_matches_scalar(self, net_small, few_byz, attack):
        kw = {} if attack is None else {"byz_mask": few_byz, "attack": attack}
        seq = [run_birthday(net_small, seed=s, **kw) for s in SEEDS]
        bat = run_birthday_batch(net_small, SEEDS, **kw)
        assert seq == bat


class TestConvergecastBatch:
    @pytest.mark.parametrize("attack", [None, "inflate", "zero"])
    def test_matches_scalar(self, net_small, one_byz, attack):
        kw = {} if attack is None else {"byz_mask": one_byz, "attack": attack}
        seq = [run_convergecast(net_small, r, **kw) for r in ROOTS]
        bat = run_convergecast_batch(net_small, ROOTS, **kw)
        for a, b in zip(seq, bat):
            assert a.count_at_root == b.count_at_root
            assert a.depth == b.depth and a.rounds == b.rounds

    def test_honest_exact(self, net_small):
        for res in run_convergecast_batch(net_small, ROOTS):
            assert res.exact


class TestFloodingDiameterBatch:
    @pytest.mark.parametrize("attack", [None, "pre-flood"])
    def test_matches_scalar(self, net_small, few_byz, attack):
        kw = {} if attack is None else {"byz_mask": few_byz, "attack": attack}
        seq = [run_flooding_diameter(net_small, L, **kw) for L in ROOTS]
        bat = run_flooding_diameter_batch(net_small, ROOTS, **kw)
        for a, b in zip(seq, bat):
            assert np.array_equal(a.arrival, b.arrival)
            assert np.array_equal(a.estimates, b.estimates)
            assert a.rounds == b.rounds

    def test_byzantine_leader_rejected(self, net_small, few_byz):
        bad_leader = int(np.flatnonzero(few_byz)[0])
        with pytest.raises(ValueError, match="honest"):
            run_flooding_diameter_batch(
                net_small, [0, bad_leader], byz_mask=few_byz, attack="pre-flood"
            )

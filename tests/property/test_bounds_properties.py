"""Property-based tests for the analysis formulas."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import bounds
from repro.core.phases import alpha_appendix, alpha_pseudocode, subphase_count

phases = st.integers(min_value=1, max_value=40)
eps_values = st.floats(min_value=0.01, max_value=0.9)
degrees = st.sampled_from([6, 8, 10, 12])


@settings(max_examples=100, deadline=None)
@given(i=phases, eps=eps_values, d=degrees)
def test_alpha_always_positive_integer(i, eps, d):
    for fn in (alpha_appendix, alpha_pseudocode):
        a = fn(i, eps, d)
        assert isinstance(a, int)
        assert a >= 1


@settings(max_examples=60, deadline=None)
@given(i=phases, eps=eps_values, d=degrees)
def test_subphases_at_least_alpha(i, eps, d):
    assert subphase_count(i, eps, d, "appendix", "i") >= alpha_appendix(i, eps, d)


@settings(max_examples=60, deadline=None)
@given(i=phases, d=degrees)
def test_threshold_strictly_below_ell(i, d):
    level = bounds.ell(i, d)
    thr = bounds.color_threshold(i, d)
    assert thr < level
    assert thr >= 0.0


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(16, 1 << 20),
    delta=st.floats(min_value=0.05, max_value=1.0),
)
def test_byzantine_budget_bounds(n, delta):
    b = bounds.byzantine_budget(n, delta)
    assert 0 <= b <= n
    assert b <= n ** (1 - delta) + 1


@settings(max_examples=60, deadline=None)
@given(
    delta=st.floats(min_value=0.05, max_value=1.0),
    d=degrees,
    gamma=st.floats(min_value=0.1, max_value=4.0),
)
def test_a_strictly_below_b(delta, d, gamma):
    k = bounds.k_of_d(d)
    assert bounds.a_constant(delta, k, d) < bounds.b_constant(gamma, d)


@settings(max_examples=40, deadline=None)
@given(m=st.integers(2, 1 << 24))
def test_tail_bounds_are_probabilities(m):
    assert 0 <= bounds.max_color_upper_tail(m) <= 1
    assert 0 <= bounds.max_color_lower_tail(m) <= 1


@settings(max_examples=40, deadline=None)
@given(i=st.integers(1, 30), eps=eps_values)
def test_wrong_decision_bound_summable_below_eps(i, eps):
    """sum_i eps/2^{i+1} < eps (the union-bound step of Lemma 11)."""
    total = sum(bounds.wrong_decision_bound(j, eps) for j in range(1, i + 1))
    assert total < eps

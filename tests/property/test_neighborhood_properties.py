"""Property-based tests for Lemma 3 reconstruction and the crash rule."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighborhood import (
    crash_phase,
    find_conflicts,
    reconstruct_h_ball,
    truthful_claims,
)
from repro.graphs import build_small_world
from repro.graphs.balls import bfs_distances

seeds = st.integers(min_value=0, max_value=200)


@settings(max_examples=12, deadline=None)
@given(seed=seeds, v=st.integers(0, 63))
def test_truthful_claims_never_conflict(seed, v):
    net = build_small_world(64, 6, seed=seed)
    truth = truthful_claims(net)
    ports = net.g_neighbors(v)
    claims = {int(u): truth[int(u)] for u in ports}
    assert find_conflicts(v, ports, claims, net.k, net.d) == ()


@settings(max_examples=12, deadline=None)
@given(seed=seeds, v=st.integers(0, 63))
def test_reconstruction_matches_bfs(seed, v):
    net = build_small_world(64, 6, seed=seed)
    truth = truthful_claims(net)
    ports = net.g_neighbors(v)
    claims = {int(u): truth[int(u)] for u in ports}
    recon = reconstruct_h_ball(v, ports, claims, net.k, net.d)
    true_d = bfs_distances(net.h.indptr, net.h.indices, v, max_depth=net.k)
    assert set(recon) == set(np.flatnonzero(true_d >= 0).tolist())
    for node, dist in recon.items():
        assert true_d[node] == dist


@settings(max_examples=12, deadline=None)
@given(seed=seeds, liar=st.integers(0, 63))
def test_phantom_lie_always_crashes_someone(seed, liar):
    """Lemma 15: a phantom-insertion lie never goes unnoticed."""
    net = build_small_world(64, 6, seed=seed)
    byz = np.zeros(net.n, dtype=bool)
    byz[liar] = True
    real = sorted(int(u) for u in net.h.neighbors(liar))
    lie = {liar: tuple(real[1:] + [net.n + 7])}
    crashed = crash_phase(net, byz, lie)
    assert crashed.any()
    assert not crashed[liar]


@settings(max_examples=12, deadline=None)
@given(seed=seeds, liar=st.integers(0, 63))
def test_truthful_byzantine_crashes_nobody(seed, liar):
    net = build_small_world(64, 6, seed=seed)
    byz = np.zeros(net.n, dtype=bool)
    byz[liar] = True
    truth = truthful_claims(net, np.array([liar]))
    crashed = crash_phase(net, byz, truth)
    assert not crashed.any()

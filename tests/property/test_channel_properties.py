"""Hypothesis properties for the lossy/noisy channel axis.

Two invariants back the channel determinism contract
(:mod:`repro.sim.channel`):

* **null channels are invisible** — any :class:`ChannelModel` with
  ``loss_p == 0`` and no effective noise (``noise_p == 0`` or
  ``noise_amp == 0``) normalizes away before reaching an engine, so the
  run is *bit-for-bit* the channel-free output on every batched layout
  and every available kernel backend;
* **lossy runs are layout-invariant** — the channel stream is spawned
  per trial and sized by the trial's own network, so the same
  (network, seed, channel) cell produces identical results whether it
  executes as a single-network batch column, a padded multinet column,
  or a segment of a block-diagonal union-stack column.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.adaptive import MobileAdversary
from repro.core import CountingConfig, make_adversary
from repro.core.batch import (
    run_counting_batch,
    run_counting_multinet,
    run_counting_unionstack,
)
from repro.graphs import build_small_world
from repro.sim.backends import available_backends
from repro.sim.channel import ChannelModel

NET = build_small_world(64, 4, seed=11)
DECOY = build_small_world(48, 4, seed=12)
CFG = CountingConfig(max_phase=6)
CFG_HONEST = CFG.with_(verification=False)

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Every way to spell "no channel effect": zero everything, noise with
#: zero amplitude, amplitude with zero probability.
null_channels = st.one_of(
    st.just(ChannelModel()),
    st.floats(0.0, 1.0).map(lambda p: ChannelModel(noise_p=p, noise_amp=0)),
    st.integers(0, 5).map(lambda a: ChannelModel(noise_p=0.0, noise_amp=a)),
)

lossy_channels = st.builds(
    ChannelModel,
    loss_p=st.floats(0.01, 0.5),
    noise_p=st.floats(0.0, 1.0),
    noise_amp=st.integers(0, 4),
)


def byz_mask(net, count=3):
    mask = np.zeros(net.n, dtype=bool)
    mask[:count] = True
    return mask


def assert_trial_equal(a, b):
    assert np.array_equal(a.decided_phase, b.decided_phase)
    assert np.array_equal(a.crashed, b.crashed)
    assert np.array_equal(a.byz, b.byz)
    assert a.meter.as_dict() == b.meter.as_dict()
    assert list(a.trace) == list(b.trace)
    assert a.injections_accepted == b.injections_accepted
    assert a.injections_rejected == b.injections_rejected


class TestNullChannelIsInvisible:
    @pytest.mark.parametrize("backend", available_backends())
    @SETTINGS
    @given(channel=null_channels, seed0=st.integers(0, 10_000))
    def test_batch_honest(self, backend, channel, seed0):
        seeds = [seed0, seed0 + 7]
        ref = run_counting_batch(NET, seeds, config=CFG_HONEST, backend=backend)
        got = run_counting_batch(
            NET, seeds, config=CFG_HONEST, backend=backend, channel=channel
        )
        for a, b in zip(ref, got, strict=True):
            assert_trial_equal(a, b)

    @pytest.mark.parametrize("backend", available_backends())
    @SETTINGS
    @given(channel=null_channels, seed0=st.integers(0, 10_000))
    def test_batch_byzantine(self, backend, channel, seed0):
        seeds = [seed0, seed0 + 7]
        kw = dict(
            config=CFG,
            adversary_factory=lambda: make_adversary("early-stop"),
            byz_mask=byz_mask(NET),
            backend=backend,
        )
        ref = run_counting_batch(NET, seeds, **kw)
        got = run_counting_batch(NET, seeds, channel=channel, **kw)
        for a, b in zip(ref, got, strict=True):
            assert_trial_equal(a, b)

    @pytest.mark.parametrize("backend", available_backends())
    @SETTINGS
    @given(channel=null_channels, seed0=st.integers(0, 10_000))
    def test_multinet(self, backend, channel, seed0):
        nets = [DECOY, NET]
        seeds = [seed0 + 1000, seed0]
        kw = dict(
            config=CFG,
            adversary_factory=lambda: make_adversary("early-stop"),
            byz_mask=[byz_mask(DECOY), byz_mask(NET)],
            backend=backend,
        )
        ref = run_counting_multinet(nets, seeds, **kw)
        got = run_counting_multinet(nets, seeds, channel=channel, **kw)
        for a, b in zip(ref, got, strict=True):
            assert_trial_equal(a, b)

    @pytest.mark.parametrize("backend", available_backends())
    @SETTINGS
    @given(channel=null_channels, seed0=st.integers(0, 10_000))
    def test_unionstack(self, backend, channel, seed0):
        nets = [DECOY, NET]
        seeds = [seed0, seed0 + 13]
        kw = dict(
            config=CFG,
            adversary_factory=lambda: make_adversary("early-stop"),
            byz_mask=[byz_mask(DECOY), byz_mask(NET)],
            backend=backend,
        )
        ref = run_counting_unionstack(nets, seeds, **kw)
        got = run_counting_unionstack(nets, seeds, channel=channel, **kw)
        for a, b in zip(ref, got, strict=True):
            assert_trial_equal(a, b)


class TestLossyLayoutInvariance:
    """The same lossy cell is bit-for-bit equal on all three layouts."""

    @SETTINGS
    @given(channel=lossy_channels, seed0=st.integers(0, 10_000))
    def test_honest_cell_across_layouts(self, channel, seed0):
        seeds = [seed0, seed0 + 7]
        batch = run_counting_batch(
            NET, seeds, config=CFG_HONEST, channel=channel
        )
        multi = run_counting_multinet(
            [DECOY, NET, NET],
            [seed0 + 1000, seeds[0], seeds[1]],
            config=CFG_HONEST,
            channel=channel,
        )
        union = run_counting_unionstack(
            [DECOY, NET], seeds, config=CFG_HONEST, channel=channel
        )
        for j in range(2):
            assert_trial_equal(batch[j], multi[1 + j])
            # Union results are network-major: NET is block 1 of 2.
            assert_trial_equal(batch[j], union[1 * 2 + j])

    @SETTINGS
    @given(
        channel=lossy_channels,
        seed0=st.integers(0, 10_000),
        strategy=st.sampled_from(["early-stop", "inflation", "mobile"]),
    )
    def test_byzantine_cell_across_layouts(self, channel, seed0, strategy):
        def factory():
            if strategy == "mobile":
                return MobileAdversary(make_adversary("early-stop"))
            return make_adversary(strategy)

        seeds = [seed0, seed0 + 7]
        mask = byz_mask(NET)
        batch = run_counting_batch(
            NET,
            seeds,
            config=CFG,
            adversary_factory=factory,
            byz_mask=mask,
            channel=channel,
        )
        multi = run_counting_multinet(
            [DECOY, NET, NET],
            [seed0 + 1000, seeds[0], seeds[1]],
            config=CFG,
            adversary_factory=factory,
            byz_mask=[byz_mask(DECOY), mask, mask],
            channel=channel,
        )
        union = run_counting_unionstack(
            [DECOY, NET],
            seeds,
            config=CFG,
            adversary_factory=factory,
            byz_mask=[byz_mask(DECOY), mask],
            channel=channel,
        )
        for j in range(2):
            assert_trial_equal(batch[j], multi[1 + j])
            assert_trial_equal(batch[j], union[1 * 2 + j])

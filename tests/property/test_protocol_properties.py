"""Property-based tests for protocol invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import random_placement
from repro.core import CountingConfig, make_adversary, run_basic_counting
from repro.core.runner import run_counting
from repro.graphs import build_small_world

seeds = st.integers(min_value=0, max_value=2**31)


@settings(max_examples=10, deadline=None)
@given(seed=seeds, n=st.sampled_from([64, 128, 256]))
def test_basic_counting_always_terminates_in_band(seed, n):
    net = build_small_world(n, 8, seed=seed % 100)
    res = run_basic_counting(net, seed=seed)
    pool = res.honest_uncrashed
    decided = res.decided_phase[pool]
    assert np.all(decided >= 1)
    # Decisions never exceed ecc + 1 by construction of the criterion.
    assert decided.max() <= 3 * np.log2(n)


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_deterministic_replay(seed):
    net = build_small_world(96, 8, seed=3)
    a = run_basic_counting(net, seed=seed)
    b = run_basic_counting(net, seed=seed)
    assert np.array_equal(a.decided_phase, b.decided_phase)


@settings(max_examples=8, deadline=None)
@given(
    seed=seeds,
    strategy=st.sampled_from(["early-stop", "inflation", "suppression"]),
    byz_count=st.integers(1, 8),
)
def test_byzantine_runs_decide_everyone(seed, strategy, byz_count):
    net = build_small_world(128, 8, seed=5)
    byz = random_placement(net.n, byz_count, rng=seed % 977)
    cfg = CountingConfig(max_phase=24)
    res = run_counting(
        net, cfg, seed=seed, adversary=make_adversary(strategy), byz_mask=byz
    )
    pool = res.honest_uncrashed
    assert np.all(res.decided_phase[pool] >= 1)


@settings(max_examples=8, deadline=None)
@given(seed=seeds, byz_count=st.integers(1, 6))
def test_early_stop_never_below_byz_distance(seed, byz_count):
    """The downward attack is distance-limited (the Lemma 11 mechanism)."""
    from repro.graphs.balls import distances_to_set

    net = build_small_world(128, 8, seed=7)
    byz = random_placement(net.n, byz_count, rng=seed % 977)
    res = run_counting(
        net,
        CountingConfig(max_phase=24),
        seed=seed,
        adversary=make_adversary("early-stop"),
        byz_mask=byz,
    )
    dist = distances_to_set(net.h.indptr, net.h.indices, np.flatnonzero(byz))
    pool = res.honest_uncrashed
    assert np.all(res.decided_phase[pool] >= dist[pool])


@settings(max_examples=6, deadline=None)
@given(seed=seeds)
def test_colors_reproducible_across_engines(seed):
    """Vectorized and agent paths agree on arbitrary seeds (spot check)."""
    from repro.core.agents import run_counting_agents

    net = build_small_world(96, 8, seed=9)
    cfg = CountingConfig(max_phase=10, verification=False)
    a = run_counting(net, cfg, seed=seed)
    b = run_counting_agents(net, cfg, seed=seed)
    assert np.array_equal(a.decided_phase, b.decided_phase)

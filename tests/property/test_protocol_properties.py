"""Property-based tests for protocol invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import random_placement
from repro.core import CountingConfig, make_adversary, run_basic_counting
from repro.core.runner import run_counting
from repro.graphs import build_small_world

seeds = st.integers(min_value=0, max_value=2**31)


@settings(max_examples=10, deadline=None)
@given(seed=seeds, n=st.sampled_from([64, 128, 256]))
def test_basic_counting_always_terminates_in_band(seed, n):
    net = build_small_world(n, 8, seed=seed % 100)
    res = run_basic_counting(net, seed=seed)
    pool = res.honest_uncrashed
    decided = res.decided_phase[pool]
    assert np.all(decided >= 1)
    # Decisions never exceed ecc + 1 by construction of the criterion.
    assert decided.max() <= 3 * np.log2(n)


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_deterministic_replay(seed):
    net = build_small_world(96, 8, seed=3)
    a = run_basic_counting(net, seed=seed)
    b = run_basic_counting(net, seed=seed)
    assert np.array_equal(a.decided_phase, b.decided_phase)


@settings(max_examples=8, deadline=None)
@given(
    seed=seeds,
    strategy=st.sampled_from(["early-stop", "inflation", "suppression"]),
    byz_count=st.integers(1, 8),
)
def test_byzantine_runs_decide_everyone(seed, strategy, byz_count):
    net = build_small_world(128, 8, seed=5)
    byz = random_placement(net.n, byz_count, rng=seed % 977)
    cfg = CountingConfig(max_phase=24)
    res = run_counting(
        net, cfg, seed=seed, adversary=make_adversary(strategy), byz_mask=byz
    )
    pool = res.honest_uncrashed
    assert np.all(res.decided_phase[pool] >= 1)


@settings(max_examples=8, deadline=None)
@given(seed=seeds, byz_count=st.integers(1, 6))
def test_early_stop_first_deviation_respects_byz_distance(seed, byz_count):
    """The downward attack is distance-limited (the Lemma 11 mechanism).

    Byzantine influence travels one H hop per flooding round, so the
    *first* node whose decision deviates from the honest-behavior baseline
    (same placement, same seed, byz nodes following the protocol — which
    keeps the honest color pool and hence every draw aligned until the
    deviation) must sit within ``first_phase`` hops of the Byzantine set.
    Nothing stronger holds per node: once any near node's decision flips,
    the undecided pool shifts and later draws differ everywhere, so a far
    node may legitimately decide below its own distance downstream of the
    first deviation (that unsound per-node claim used to flake here).
    """
    from repro.graphs.balls import distances_to_set

    net = build_small_world(128, 8, seed=7)
    byz = random_placement(net.n, byz_count, rng=seed % 977)
    cfg = CountingConfig(max_phase=24)
    attacked = run_counting(
        net, cfg, seed=seed, adversary=make_adversary("early-stop"), byz_mask=byz
    )
    baseline = run_counting(
        net, cfg, seed=seed, adversary=make_adversary("honest"), byz_mask=byz
    )
    assert np.array_equal(attacked.crashed, baseline.crashed)
    pool = attacked.honest_uncrashed & baseline.honest_uncrashed
    da = np.where(attacked.decided_phase == -1, cfg.max_phase + 1, attacked.decided_phase)
    db = np.where(baseline.decided_phase == -1, cfg.max_phase + 1, baseline.decided_phase)
    deviated = pool & (da != db)
    if not deviated.any():
        return
    first = np.minimum(da, db)
    first_phase = first[deviated].min()
    dist = distances_to_set(net.h.indptr, net.h.indices, np.flatnonzero(byz))
    earliest = deviated & (first == first_phase)
    assert np.all(dist[earliest] <= first_phase)


@settings(max_examples=6, deadline=None)
@given(seed=seeds)
def test_colors_reproducible_across_engines(seed):
    """Vectorized and agent paths agree on arbitrary seeds (spot check)."""
    from repro.core.agents import run_counting_agents

    net = build_small_world(96, 8, seed=9)
    cfg = CountingConfig(max_phase=10, verification=False)
    a = run_counting(net, cfg, seed=seed)
    b = run_counting_agents(net, cfg, seed=seed)
    assert np.array_equal(a.decided_phase, b.decided_phase)

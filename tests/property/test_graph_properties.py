"""Property-based tests (hypothesis) for graph substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import build_small_world, generate_hgraph
from repro.graphs.balls import ball_sizes, bfs_distances, gather_neighbors

sizes = st.integers(min_value=8, max_value=96)
degrees = st.sampled_from([4, 6, 8])
seeds = st.integers(min_value=0, max_value=2**31)


@settings(max_examples=25, deadline=None)
@given(n=sizes, d=degrees, seed=seeds)
def test_hgraph_always_d_regular(n, d, seed):
    g = generate_hgraph(n, d, seed=seed)
    degs = np.bincount(g.indices, minlength=n)
    assert np.all(degs == d)


@settings(max_examples=25, deadline=None)
@given(n=sizes, d=degrees, seed=seeds)
def test_hgraph_adjacency_symmetric(n, d, seed):
    g = generate_hgraph(n, d, seed=seed)
    mat = g.to_scipy()
    diff = (mat - mat.T)
    assert abs(diff).sum() == 0


@settings(max_examples=25, deadline=None)
@given(n=sizes, d=degrees, seed=seeds)
def test_hgraph_connected(n, d, seed):
    g = generate_hgraph(n, d, seed=seed)
    assert g.is_connected()


@settings(max_examples=20, deadline=None)
@given(n=sizes, d=degrees, seed=seeds, v=st.integers(0, 7), r=st.integers(0, 4))
def test_ball_sizes_monotone_and_bounded(n, d, seed, v, r):
    g = generate_hgraph(n, d, seed=seed)
    sizes_ = ball_sizes(g.indptr, g.indices, v % n, r)
    assert sizes_[0] == 1
    assert np.all(np.diff(sizes_) >= 0)
    assert sizes_[-1] <= n


@settings(max_examples=20, deadline=None)
@given(n=sizes, d=degrees, seed=seeds, src=st.integers(0, 7))
def test_bfs_triangle_inequality_one_step(n, d, seed, src):
    """dist(u) <= dist(v) + 1 for every edge (v, u)."""
    g = generate_hgraph(n, d, seed=seed)
    dist = bfs_distances(g.indptr, g.indices, src % n)
    for v in range(n):
        for u in g.neighbors(v):
            assert dist[u] <= dist[v] + 1


@settings(max_examples=15, deadline=None)
@given(n=st.integers(16, 64), seed=seeds)
def test_small_world_g_contains_h(n, seed):
    net = build_small_world(n, 6, seed=seed)
    for v in range(0, n, 5):
        h_nbrs = set(net.h_neighbors(v).tolist())
        g_nbrs = set(net.g_neighbors(v).tolist())
        assert h_nbrs <= g_nbrs


@settings(max_examples=15, deadline=None)
@given(n=st.integers(16, 64), seed=seeds)
def test_small_world_dist_tags_valid(n, seed):
    net = build_small_world(n, 6, seed=seed)
    assert np.all(net.g_dist >= 1)
    assert np.all(net.g_dist <= net.k)


@settings(max_examples=20, deadline=None)
@given(n=sizes, d=degrees, seed=seeds)
def test_gather_neighbors_counts(n, d, seed):
    g = generate_hgraph(n, d, seed=seed)
    nodes = np.arange(0, n, 3)
    out = gather_neighbors(g.indptr, g.indices, nodes)
    assert out.shape[0] == nodes.shape[0] * d

"""Property tests: batched color state never widens past int32.

The batched engines keep per-subphase color state in int32 — colors are
``O(log n)`` whp, and every built-in strategy injects values bounded by
``HUGE_COLOR = 2**20 < 2**31`` — widening lazily to int64 only when an
adversary plan leaves the int32 range.  These tests pin the invariant
end-to-end by spying on every flood-kernel max-reduction (the only place
color state crosses the wire): honest and built-in-strategy runs must
never hand a kernel an array wider than 4 bytes, and a control adversary
with an out-of-range value must (proving the spy can see widening).
"""

import contextlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    Adversary,
    BatchSubphasePlan,
    SubphasePlan,
    random_placement,
)
from repro.adversary.strategies import HUGE_COLOR
from repro.core import ADVERSARIES, make_adversary, run_counting_batch
from repro.core.batch import run_counting_multinet, run_counting_unionstack
from repro.graphs import build_small_world
from repro.sim.flood import FloodKernel, MultiFloodKernel, UnionFloodKernel

_INT32_MAX = int(np.iinfo(np.int32).max)
_KERNEL_METHODS = ("neighbor_max", "neighbor_max_batch", "neighbor_max_stacked")

seeds = st.integers(min_value=0, max_value=2**31)


@contextlib.contextmanager
def _spy_kernel_dtypes():
    """Record the itemsize of every state array handed to a flood kernel."""
    seen: set[int] = set()
    patched = []

    def _wrap(cls, name):
        orig = cls.__dict__[name]

        def wrapper(self, values, *args, **kwargs):
            seen.add(np.asarray(values).dtype.itemsize)
            return orig(self, values, *args, **kwargs)

        patched.append((cls, name, orig))
        setattr(cls, name, wrapper)

    for cls in (FloodKernel, MultiFloodKernel, UnionFloodKernel):
        for name in _KERNEL_METHODS:
            if name in cls.__dict__:
                _wrap(cls, name)
    try:
        yield seen
    finally:
        for cls, name, orig in patched:
            setattr(cls, name, orig)


def test_builtin_injection_values_fit_int32():
    assert HUGE_COLOR <= _INT32_MAX


@settings(max_examples=6, deadline=None)
@given(seed=seeds, n=st.sampled_from([64, 128]))
def test_honest_batch_state_stays_int32(seed, n):
    net = build_small_world(n, 8, seed=seed % 50)
    with _spy_kernel_dtypes() as seen:
        run_counting_batch(net, seeds=[seed, seed + 1])
    assert seen and max(seen) <= 4


@settings(max_examples=10, deadline=None)
@given(seed=seeds, strategy=st.sampled_from(sorted(ADVERSARIES)))
def test_builtin_strategies_state_stays_int32(seed, strategy):
    net = build_small_world(96, 8, seed=7)
    byz = random_placement(96, 4, rng=seed)
    with _spy_kernel_dtypes() as seen:
        run_counting_batch(
            net,
            seeds=[seed, seed + 1],
            adversary_factory=make_adversary(strategy),
            byz_mask=byz,
        )
    # A topology-liar crash ball can engulf a small network entirely, ending
    # the run with no flood rounds at all — the bound is what matters.
    assert max(seen, default=0) <= 4


@settings(max_examples=4, deadline=None)
@given(seed=seeds, strategy=st.sampled_from(["early-stop", "combo", "silent"]))
def test_multinet_and_union_state_stays_int32(seed, strategy):
    nets = [build_small_world(64, 8, seed=1), build_small_world(96, 8, seed=2)]
    masks = [random_placement(net.n, 3, rng=seed) for net in nets]
    with _spy_kernel_dtypes() as seen:
        run_counting_multinet(
            nets,
            seeds=[seed, seed + 1],
            adversary_factory=ADVERSARIES[strategy],
            byz_mask=masks,
        )
    assert max(seen, default=0) <= 4
    with _spy_kernel_dtypes() as seen:
        run_counting_unionstack(
            nets,
            seeds=[seed, seed + 1],
            adversary_factory=ADVERSARIES[strategy],
            byz_mask=masks,
        )
    assert max(seen, default=0) <= 4


class _OverflowAdversary(Adversary):
    """Early-stop clone whose planted color exceeds the int32 range."""

    def subphase_plan(self, state):
        colors = np.full(state.byz_nodes.shape[0], _INT32_MAX + 1, dtype=np.int64)
        return SubphasePlan(initial_colors=colors, injections=[], relay=True)

    def batch_subphase_plan(self, state):
        colors = np.full(
            (state.byz_nodes.shape[0], state.batch), _INT32_MAX + 1, dtype=np.int64
        )
        return BatchSubphasePlan(initial_colors=colors)


def test_out_of_range_plan_widens_to_int64():
    """Control: the spy does observe widening when a plan leaves int32."""
    net = build_small_world(64, 8, seed=3)
    byz = random_placement(64, 2, rng=0)
    with _spy_kernel_dtypes() as seen:
        run_counting_batch(
            net, seeds=[5], adversary_factory=_OverflowAdversary, byz_mask=byz
        )
    assert 8 in seen

"""Hypothesis properties for the block-diagonal union-stack batch.

The union-stack engines keep a rectangular (network x seed) grid as one
``(sum n_g, C)`` state whose row *segments* are the member networks'
blocks.  Two families of invariants make that sound, pinned here on
random rectangular grids:

* **segment offsets partition the rows exactly** — the union kernel's
  ``offsets`` tile ``[0, N)`` with the member sizes in order, and no
  value ever crosses a block boundary: after every flooding round of any
  values, each block's rows equal the member network's own unpadded
  kernel output (blocks share no edges, so leakage is structurally
  impossible — this is the property that replaces the padded layout's
  "padding rows stay zero" invariant);
* **per-cell engine equality** — for random rectangular grids of
  networks and seeds (and, for Algorithm 2, placements), every
  ``(network, seed)`` cell of
  :func:`repro.core.batch.run_counting_unionstack` equals the padded
  :func:`repro.core.batch.run_counting_multinet` cell bit for bit
  (decisions, crashes, meters, traces, injection counters) — and the
  padded engine is itself pinned to per-network runs by
  ``tests/property/test_padding_properties.py``, closing the chain.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CountingConfig, make_adversary
from repro.core.batch import run_counting_multinet, run_counting_unionstack
from repro.graphs import build_small_world
from repro.sim.flood import FloodKernel, UnionFloodKernel

# Session-fixed pool of small same-degree networks (two share (n, d) so
# same-shape blocks are exercised too).
NETWORKS = [
    build_small_world(24, 4, seed=1),
    build_small_world(32, 4, seed=2),
    build_small_world(32, 4, seed=5),
    build_small_world(48, 4, seed=3),
    build_small_world(64, 4, seed=4),
]

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_trial_equal(a, b):
    assert np.array_equal(a.decided_phase, b.decided_phase)
    assert np.array_equal(a.crashed, b.crashed)
    assert np.array_equal(a.byz, b.byz)
    assert a.meter.as_dict() == b.meter.as_dict()
    assert list(a.trace) == list(b.trace)
    assert a.injections_accepted == b.injections_accepted
    assert a.injections_rejected == b.injections_rejected


# A block mix: which pool networks stack, in which order (repeats allowed
# — re-samples of one shape are distinct blocks).
block_mixes = st.lists(
    st.integers(min_value=0, max_value=len(NETWORKS) - 1), min_size=1, max_size=4
)


class TestKernelSegments:
    """UnionFloodKernel: offsets tile the rows; blocks never leak."""

    @SETTINGS
    @given(mix=block_mixes)
    def test_offsets_partition_rows_exactly(self, mix):
        nets = [NETWORKS[i] for i in mix]
        uk = UnionFloodKernel.from_networks(nets)
        sizes = [net.n for net in nets]
        assert uk.sizes == tuple(sizes)
        assert uk.offsets[0] == 0
        assert uk.offsets[-1] == uk.n == sum(sizes)
        assert np.array_equal(np.diff(uk.offsets), np.asarray(sizes))
        # Every block's adjacency references only its own row segment.
        for g in range(len(nets)):
            lo, hi = int(uk.offsets[g]), int(uk.offsets[g + 1])
            seg_indices = uk.indices[uk.indptr[lo] : uk.indptr[hi]]
            assert seg_indices.min() >= lo
            assert seg_indices.max() < hi

    @SETTINGS
    @given(
        mix=block_mixes,
        batch=st.integers(1, 5),
        value_seed=st.integers(0, 2**31 - 1),
        rounds=st.integers(1, 3),
    )
    def test_blocks_never_leak_across_boundaries(self, mix, batch, value_seed, rounds):
        nets = [NETWORKS[i] for i in mix]
        uk = UnionFloodKernel.from_networks(nets)
        kernels = [FloodKernel(net.h.indptr, net.h.indices) for net in nets]
        rng = np.random.default_rng(value_seed)
        cur = rng.integers(0, 1000, (uk.n, batch)).astype(np.int64)
        refs = [
            np.array(cur[uk.offsets[g] : uk.offsets[g + 1]]) for g in range(len(nets))
        ]
        for _ in range(rounds):
            out = uk.neighbor_max_stacked(cur)
            for g, kernel in enumerate(kernels):
                lo, hi = int(uk.offsets[g]), int(uk.offsets[g + 1])
                # The union round restricted to one block equals the
                # member network's own unpadded kernel, column for column.
                expected = np.stack(
                    [kernel.neighbor_max(refs[g][:, b]) for b in range(batch)], axis=1
                )
                assert np.array_equal(out[lo:hi], expected)
                np.maximum(refs[g], expected, out=refs[g])
            np.maximum(cur, out, out=cur)
            for g in range(len(nets)):
                lo, hi = int(uk.offsets[g]), int(uk.offsets[g + 1])
                assert np.array_equal(cur[lo:hi], refs[g])

    @SETTINGS
    @given(mix=block_mixes, batch=st.integers(1, 4), value_seed=st.integers(0, 2**31 - 1))
    def test_segment_reductions_match_per_block(self, mix, batch, value_seed):
        nets = [NETWORKS[i] for i in mix]
        uk = UnionFloodKernel.from_networks(nets)
        rng = np.random.default_rng(value_seed)
        values = rng.integers(0, 3, (uk.n, batch)).astype(np.int64)
        nz = uk.segment_count_nonzero(values)
        sums = uk.segment_sum(values)
        for g in range(len(nets)):
            lo, hi = int(uk.offsets[g]), int(uk.offsets[g + 1])
            assert np.array_equal(nz[g], np.count_nonzero(values[lo:hi], axis=0))
            assert np.array_equal(sums[g], values[lo:hi].sum(axis=0))
        # The out= contract: results land in the caller's buffer, equal to
        # the allocating path (the segmented-reduceat rewrite must honor
        # both) and the buffer itself is returned.
        nz_buf = np.empty_like(nz)
        assert uk.segment_count_nonzero(values, out=nz_buf) is nz_buf
        assert np.array_equal(nz_buf, nz)


class TestEngineUnionStack:
    """run_counting_unionstack: rectangular grids equal the padded engine."""

    @SETTINGS
    @given(mix=block_mixes, cols=st.integers(1, 4), seed0=st.integers(0, 10_000))
    def test_honest_grid_equals_padded(self, mix, cols, seed0):
        cfg = CountingConfig(max_phase=5, verification=False)
        nets = [NETWORKS[i] for i in mix]
        seeds = [seed0 + 7 * j for j in range(cols)]
        union = run_counting_unionstack(nets, seeds, config=cfg)
        padded = run_counting_multinet(
            [net for net in nets for _ in seeds],
            [s for _ in nets for s in seeds],
            config=cfg,
        )
        assert len(union) == len(padded) == len(nets) * cols
        for a, b in zip(padded, union):
            assert_trial_equal(a, b)

    @SETTINGS
    @given(
        mix=block_mixes,
        cols=st.integers(1, 3),
        seed0=st.integers(0, 10_000),
        byz_count=st.integers(1, 3),
    )
    def test_byzantine_grid_equals_padded(self, mix, cols, seed0, byz_count):
        cfg = CountingConfig(max_phase=5)
        nets = [NETWORKS[i] for i in mix]
        seeds = [seed0 + 11 * j for j in range(cols)]
        masks = []
        for net in nets:
            m = np.zeros(net.n, dtype=bool)
            m[:byz_count] = True
            masks.append(m)
        union = run_counting_unionstack(
            nets,
            seeds,
            config=cfg,
            adversary_factory=lambda: make_adversary("early-stop"),
            byz_mask=masks,
        )
        padded = run_counting_multinet(
            [net for net in nets for _ in seeds],
            [s for _ in nets for s in seeds],
            config=cfg,
            adversary_factory=lambda: make_adversary("early-stop"),
            byz_mask=[m for m in masks for _ in seeds],
        )
        for a, b in zip(padded, union):
            assert_trial_equal(a, b)

    def test_mixed_configs_keep_columns_independent(self):
        # Column config grouping in one deterministic case: two configs
        # interleaved across the column axis of a two-block stack.
        cfgs = [
            CountingConfig(max_phase=4, verification=False),
            CountingConfig(max_phase=4, verification=False, eps=0.25),
        ]
        nets = [NETWORKS[0], NETWORKS[3]]
        seeds = [1, 2, 3, 4]
        col_cfgs = [cfgs[0], cfgs[1], cfgs[0], cfgs[1]]
        union = run_counting_unionstack(nets, seeds, config=col_cfgs)
        padded = run_counting_multinet(
            [net for net in nets for _ in seeds],
            [s for _ in nets for s in seeds],
            config=[c for _ in nets for c in col_cfgs],
        )
        for a, b in zip(padded, union):
            assert_trial_equal(a, b)

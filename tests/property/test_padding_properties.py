"""Hypothesis properties for the padded multi-network batch.

The network-axis engines keep trials of *different-sized* graphs as
columns of one state matrix padded to the largest ``n``.  Two families of
invariants make that sound, and both are pinned here on random ragged
size mixes:

* **padding never leaks** — a padding row (a row at or beyond a column's
  network size) is identically zero after every flooding round, and can
  never win a max into a live column: for any mix of networks and any
  values, every column of the padded kernel equals the unpadded
  per-network kernel;
* **per-column engine equality** — for random ragged mixes of networks,
  seeds, and (for Algorithm 2) placements, each column of
  :func:`repro.core.batch.run_counting_multinet` equals the unpadded
  per-network run bit for bit (decisions, crashes, meters, traces,
  injection counters), i.e. the active-length bookkeeping (decided
  counting, saturation, witness metering over live prefixes only) holds
  after every round of every phase.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CountingConfig, make_adversary
from repro.core.batch import run_counting_batch, run_counting_multinet
from repro.graphs import build_small_world
from repro.sim.flood import FloodKernel, MultiFloodKernel

# Session-fixed pool of small same-degree networks (two share (n, d) so
# the shape-group merged gather path is exercised too).
NETWORKS = [
    build_small_world(24, 4, seed=1),
    build_small_world(32, 4, seed=2),
    build_small_world(32, 4, seed=5),
    build_small_world(48, 4, seed=3),
    build_small_world(64, 4, seed=4),
]

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_trial_equal(a, b):
    assert np.array_equal(a.decided_phase, b.decided_phase)
    assert np.array_equal(a.crashed, b.crashed)
    assert np.array_equal(a.byz, b.byz)
    assert a.meter.as_dict() == b.meter.as_dict()
    assert list(a.trace) == list(b.trace)
    assert a.injections_accepted == b.injections_accepted
    assert a.injections_rejected == b.injections_rejected


col_mixes = st.lists(
    st.integers(min_value=0, max_value=len(NETWORKS) - 1), min_size=1, max_size=8
)


class TestKernelPadding:
    """MultiFloodKernel: padding rows stay zero, live prefixes stay exact."""

    @SETTINGS
    @given(mix=col_mixes, value_seed=st.integers(0, 2**31 - 1), rounds=st.integers(1, 3))
    def test_padding_rows_never_leak(self, mix, value_seed, rounds):
        used = sorted(set(mix))
        nets = [NETWORKS[i] for i in used]
        col_net = np.asarray([used.index(i) for i in mix], dtype=np.int64)
        mk = MultiFloodKernel(nets)
        rng = np.random.default_rng(value_seed)
        values = np.zeros((mk.n_pad, len(mix)), dtype=np.int64)
        for b, g in enumerate(col_net):
            n_b = nets[g].n
            values[:n_b, b] = rng.integers(0, 1000, n_b)
        refs = [
            np.array(values[: nets[g].n, b]) for b, g in enumerate(col_net)
        ]
        plan = mk.column_plan(col_net)
        kernels = [FloodKernel(net.h.indptr, net.h.indices) for net in nets]
        cur = values
        for _ in range(rounds):
            out = mk.neighbor_max_stacked(cur, plan)
            for b, g in enumerate(col_net):
                n_b = nets[g].n
                # Invariant 1: the padding suffix is identically zero
                # after every round.
                assert not out[n_b:, b].any()
                # Invariant 2: the live prefix equals the unpadded kernel.
                expected = kernels[g].neighbor_max(refs[b])
                assert np.array_equal(out[:n_b, b], expected)
                np.maximum(refs[b], expected, out=refs[b])
            cur = np.maximum(cur, out)
            for b, g in enumerate(col_net):
                assert np.array_equal(cur[: nets[g].n, b], refs[b])
                assert not cur[nets[g].n :, b].any()


class TestEnginePadding:
    """run_counting_multinet: ragged mixes equal the unpadded runs."""

    @SETTINGS
    @given(mix=col_mixes, seed0=st.integers(0, 10_000))
    def test_honest_ragged_mix_equals_unpadded(self, mix, seed0):
        cfg = CountingConfig(max_phase=5, verification=False)
        nets = [NETWORKS[i] for i in mix]
        seeds = [seed0 + 7 * j for j in range(len(mix))]
        multi = run_counting_multinet(nets, seeds, config=cfg)
        for j, (net, s) in enumerate(zip(nets, seeds)):
            ref = run_counting_batch(net, [s], config=cfg)[0]
            assert_trial_equal(ref, multi[j])

    @SETTINGS
    @given(mix=col_mixes, seed0=st.integers(0, 10_000), byz_count=st.integers(1, 3))
    def test_byzantine_ragged_mix_equals_unpadded(self, mix, seed0, byz_count):
        cfg = CountingConfig(max_phase=5)
        nets = [NETWORKS[i] for i in mix]
        seeds = [seed0 + 11 * j for j in range(len(mix))]
        masks = []
        for net in nets:
            m = np.zeros(net.n, dtype=bool)
            m[:byz_count] = True
            masks.append(m)
        multi = run_counting_multinet(
            nets,
            seeds,
            config=cfg,
            adversary_factory=lambda: make_adversary("early-stop"),
            byz_mask=masks,
        )
        for j, (net, s, m) in enumerate(zip(nets, seeds, masks)):
            ref = run_counting_batch(
                net,
                [s],
                config=cfg,
                adversary_factory=lambda: make_adversary("early-stop"),
                byz_mask=m,
            )[0]
            assert_trial_equal(ref, multi[j])

    def test_mixed_configs_keep_columns_independent(self):
        # Config grouping + network interleaving in one deterministic case.
        cfgs = [
            CountingConfig(max_phase=4, verification=False),
            CountingConfig(max_phase=4, verification=False, eps=0.25),
        ]
        nets = [NETWORKS[0], NETWORKS[3], NETWORKS[0], NETWORKS[3]]
        seeds = [1, 2, 3, 4]
        trial_cfgs = [cfgs[0], cfgs[0], cfgs[1], cfgs[1]]
        multi = run_counting_multinet(nets, seeds, config=trial_cfgs)
        for j, (net, s, c) in enumerate(zip(nets, seeds, trial_cfgs)):
            ref = run_counting_batch(net, [s], config=c)[0]
            assert_trial_equal(ref, multi[j])

"""The experiment suite itself is under test: every registered experiment
must run at small scale and pass its own shape checks."""

import pytest

from repro.experiments import (
    Table,
    all_experiment_ids,
    get_experiment,
    run_experiment,
)

EXPECTED_IDS = [f"E{i:02d}" for i in range(1, 18)]


class TestRegistry:
    def test_all_seventeen_registered(self):
        assert all_experiment_ids() == EXPECTED_IDS

    def test_get_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("E99")

    def test_metadata_present(self):
        for exp_id in all_experiment_ids():
            exp = get_experiment(exp_id)
            assert exp.title
            assert exp.claim

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            get_experiment("E01").run(scale="huge")


class TestTable:
    def test_render_alignment(self):
        t = Table(title="t", columns=["a", "bb"])
        t.add(1, 2.5)
        text = t.render()
        assert "a" in text and "bb" in text and "2.5" in text

    def test_row_width_checked(self):
        t = Table(title="t", columns=["a"])
        with pytest.raises(ValueError):
            t.add(1, 2)

    def test_float_formatting(self):
        t = Table(title="t", columns=["x"])
        t.add(0.333333333)
        t.add(float("nan"))
        t.add(123456.0)
        rendered = t.render()
        assert "0.333" in rendered
        assert "nan" in rendered


@pytest.mark.parametrize("exp_id", EXPECTED_IDS)
def test_experiment_small_scale_passes(exp_id):
    result = run_experiment(exp_id, scale="small", seed=1)
    assert result.tables, f"{exp_id} produced no tables"
    assert result.checks, f"{exp_id} defined no shape checks"
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"{exp_id} failed shape checks: {failed}"

"""Tests for the experiment CLI and shared helpers."""

import numpy as np
import pytest

from repro.core import CountingConfig, run_counting
from repro.experiments.common import (
    basic_counting_trials,
    network,
    ns_for,
    parallel_map,
)
from repro.experiments.harness import run_experiments
from repro.experiments.run import main


def _square(x):  # module-level so ProcessPoolExecutor can pickle it
    return x * x


class TestCommon:
    def test_network_cached(self):
        a = network(64, 6, seed=1)
        b = network(64, 6, seed=1)
        assert a is b  # lru_cache shares instances within a process

    def test_network_distinct_keys(self):
        a = network(64, 6, seed=1)
        b = network(64, 6, seed=2)
        assert a is not b

    def test_network_explicit_k_distinct_from_default(self):
        # k=None and an explicit k must never alias to the same graph seed.
        a = network(64, 6, seed=1)
        b = network(64, 6, seed=1, k=1)
        assert a is not b
        assert a.k == 2 and b.k == 1

    def test_network_invalid_k_rejected(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            network(64, 6, seed=1, k=0)

    def test_ns_for(self):
        assert ns_for("small", small=(1,), full=(1, 2)) == (1,)
        assert ns_for("full", small=(1,), full=(1, 2)) == (1, 2)


class TestBatchedTrials:
    def test_basic_trials_match_sequential(self, net_small):
        cfg = CountingConfig(max_phase=16)
        seeds = [50 + r for r in range(4)]
        trials = basic_counting_trials(net_small, seeds, config=cfg)
        for seed, res in zip(seeds, trials):
            ref = run_counting(
                net_small, cfg.with_(verification=False), seed=seed
            )
            assert np.array_equal(res.decided_phase, ref.decided_phase)
            assert res.meter.as_dict() == ref.meter.as_dict()

    def test_aggregates_shapes(self, net_small):
        trials = basic_counting_trials(net_small, [1, 2, 3])
        assert trials.decided_matrix().shape == (3, net_small.n)
        assert trials.rounds().shape == (3,)
        assert trials.fraction_decided().min() == 1.0
        assert len(trials.median_phases()) == 3


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [5], jobs=4) == [25]

    def test_process_shard_preserves_order(self):
        assert parallel_map(_square, list(range(8)), jobs=2) == [
            x * x for x in range(8)
        ]


class TestRunExperiments:
    def test_serial_matches_single(self):
        results = run_experiments(["E12"], scale="small", seed=1)
        assert len(results) == 1
        assert results[0].exp_id == "E12"
        assert results[0].passed

    def test_sharded_runs(self):
        results = run_experiments(["E10", "E12"], scale="small", seed=1, jobs=2)
        assert [r.exp_id for r in results] == ["E10", "E12"]
        assert all(r.passed for r in results)


class TestCli:
    def test_single_experiment(self, capsys):
        rc = main(["--exp", "E05", "--scale", "small", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "E05" in out
        assert "PASS" in out

    def test_multiple_experiments(self, capsys):
        rc = main(["--exp", "E02", "--exp", "E09", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "E02" in out and "E09" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            main(["--exp", "E99"])

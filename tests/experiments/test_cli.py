"""Tests for the experiment CLI and shared helpers."""

import pytest

from repro.experiments.common import network, ns_for
from repro.experiments.run import main


class TestCommon:
    def test_network_cached(self):
        a = network(64, 6, seed=1)
        b = network(64, 6, seed=1)
        assert a is b  # lru_cache shares instances within a process

    def test_network_distinct_keys(self):
        a = network(64, 6, seed=1)
        b = network(64, 6, seed=2)
        assert a is not b

    def test_ns_for(self):
        assert ns_for("small", small=(1,), full=(1, 2)) == (1,)
        assert ns_for("full", small=(1,), full=(1, 2)) == (1, 2)


class TestCli:
    def test_single_experiment(self, capsys):
        rc = main(["--exp", "E05", "--scale", "small", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "E05" in out
        assert "PASS" in out

    def test_multiple_experiments(self, capsys):
        rc = main(["--exp", "E02", "--exp", "E09", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "E02" in out and "E09" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            main(["--exp", "E99"])

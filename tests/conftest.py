"""Shared fixtures: session-scoped sampled networks (generation is the
slowest step, so tests share immutable instances)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import build_small_world, generate_hgraph


@pytest.fixture(scope="session")
def h_small():
    """A small H(128, 8) sample."""
    return generate_hgraph(128, 8, seed=7)


@pytest.fixture(scope="session")
def net_small():
    """A small G = H ∪ L sample (n=128, d=8, k=3)."""
    return build_small_world(128, 8, seed=7)


@pytest.fixture(scope="session")
def net_medium():
    """A medium network for protocol-level tests (n=512)."""
    return build_small_world(512, 8, seed=11)


@pytest.fixture(scope="session")
def byz_mask_small(net_small):
    mask = np.zeros(net_small.n, dtype=bool)
    mask[[5, 40, 77]] = True
    return mask

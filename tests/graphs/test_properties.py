"""Unit tests for graph property estimators."""

import numpy as np
import pytest

from repro.graphs import (
    average_clustering,
    cut_expansion,
    degree_stats,
    diameter,
    eccentricity_sample,
    edge_expansion_sampled,
    network_summary,
    ramanujan_bound,
    spectral_report,
)


class TestSpectral:
    def test_lambda1_equals_d(self, h_small):
        spec = spectral_report(h_small)
        assert spec.lambda1 == pytest.approx(h_small.d, abs=1e-8)

    def test_lambda2_below_d(self, h_small):
        spec = spectral_report(h_small)
        assert spec.lambda2 < h_small.d

    def test_near_ramanujan_whp(self, h_small):
        spec = spectral_report(h_small)
        assert spec.lambda2 <= 1.2 * ramanujan_bound(h_small.d)

    def test_cheeger_consistent(self, h_small):
        spec = spectral_report(h_small)
        assert spec.cheeger_lower == pytest.approx(spec.spectral_gap / 2)

    def test_ramanujan_bound_value(self):
        assert ramanujan_bound(8) == pytest.approx(2 * np.sqrt(7))


class TestCutExpansion:
    def test_single_node_cut(self, h_small):
        # A single node's boundary is its degree.
        assert cut_expansion(h_small.indptr, h_small.indices, np.array([0])) == h_small.d

    def test_whole_graph_has_zero_boundary(self, h_small):
        subset = np.arange(h_small.n)
        assert cut_expansion(h_small.indptr, h_small.indices, subset) == 0.0

    def test_empty_subset_raises(self, h_small):
        with pytest.raises(ValueError):
            cut_expansion(h_small.indptr, h_small.indices, np.array([], dtype=np.int64))

    def test_sampled_expansion_positive(self, h_small):
        h = edge_expansion_sampled(h_small, rng=1, trials=32)
        assert 0 < h <= h_small.d

    def test_sampled_expansion_at_most_cheeger_consistent(self, h_small):
        # The sampled cut value upper-bounds the true expansion which
        # lower-bounds via Cheeger; sampled >= cheeger_lower necessarily.
        spec = spectral_report(h_small)
        h = edge_expansion_sampled(h_small, rng=1, trials=32)
        assert h >= spec.cheeger_lower * 0.5  # slack: sampling noise


class TestClusteringDiameter:
    def test_clustering_of_h_is_small(self, h_small):
        c = average_clustering(h_small.indptr, h_small.indices, sample=None)
        assert c < 0.2

    def test_clustering_bounds(self, net_small):
        c = average_clustering(net_small.g_indptr, net_small.g_indices, sample=64)
        assert 0.0 <= c <= 1.0

    def test_diameter_exact_vs_sampled(self, h_small):
        exact = diameter(h_small.indptr, h_small.indices, exact=True)
        sampled = diameter(h_small.indptr, h_small.indices, rng=0, sample=16)
        assert sampled <= exact
        assert sampled >= exact - 1  # double sweep is near-exact on expanders

    def test_eccentricity_sample_range(self, h_small):
        eccs = eccentricity_sample(h_small.indptr, h_small.indices, rng=0, sample=8)
        d = diameter(h_small.indptr, h_small.indices, exact=True)
        assert np.all(eccs <= d)
        assert np.all(eccs >= d / 2)  # radius >= diameter / 2


class TestDegreeStats:
    def test_regular(self, h_small):
        stats = degree_stats(h_small.indptr)
        assert stats.is_regular
        assert stats.minimum == stats.maximum == h_small.d
        assert stats.mean == h_small.d

    def test_irregular(self):
        indptr = np.array([0, 1, 3, 4], dtype=np.int64)
        stats = degree_stats(indptr)
        assert not stats.is_regular
        assert stats.minimum == 1
        assert stats.maximum == 2


class TestNetworkSummary:
    def test_summary_keys(self, net_small):
        summary = network_summary(net_small)
        for key in ("n", "d", "k", "lambda2", "clustering_G", "diameter_H"):
            assert key in summary
        assert summary["clustering_G"] > summary["clustering_H"]

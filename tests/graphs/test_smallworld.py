"""Unit tests for the G = H ∪ L small-world overlay."""

import numpy as np
import pytest

from repro.graphs import build_small_world, lattice_parameter
from repro.graphs.balls import bfs_distances


class TestLatticeParameter:
    @pytest.mark.parametrize("d,k", [(6, 2), (8, 3), (9, 3), (10, 4), (12, 4)])
    def test_ceil_d_over_3(self, d, k):
        assert lattice_parameter(d) == k


class TestConstruction:
    def test_k_default(self, net_small):
        assert net_small.k == 3

    def test_g_neighbors_are_k_ball(self, net_small):
        for v in (0, 17, 100):
            dist = bfs_distances(
                net_small.h.indptr, net_small.h.indices, v, max_depth=net_small.k
            )
            expected = set(np.flatnonzero(dist >= 1).tolist())
            assert set(net_small.g_neighbors(v).tolist()) == expected

    def test_g_dist_tags_match_h_distance(self, net_small):
        v = 42
        dist = bfs_distances(
            net_small.h.indptr, net_small.h.indices, v, max_depth=net_small.k
        )
        for u, tag in zip(net_small.g_neighbors(v), net_small.g_neighbor_dists(v)):
            assert dist[u] == tag

    def test_h_edges_subset_of_g(self, net_small):
        for v in (3, 64):
            for u in net_small.h_neighbors(v):
                assert net_small.is_g_edge(v, int(u))

    def test_g_symmetric(self, net_small):
        for v in (0, 9, 55):
            for u in net_small.g_neighbors(v):
                assert net_small.is_g_edge(int(u), v)

    def test_no_self_loops(self, net_small):
        for v in range(net_small.n):
            assert v not in net_small.g_neighbors(v)

    def test_custom_k_override(self):
        net = build_small_world(64, 8, seed=1, k=1)
        # k=1: G collapses to the simple version of H.
        for v in (0, 10):
            assert set(net.g_neighbors(v).tolist()) == set(
                net.h_neighbors(v).tolist()
            )

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            build_small_world(64, 8, seed=1, k=0)

    def test_max_degree_bounded_by_observation2(self, net_small):
        # |B_G(v, 1)| < (d-1)^{k+1} (Observation 2).
        bound = (net_small.d - 1) ** (net_small.k + 1)
        assert net_small.max_g_degree() < bound

    def test_deterministic(self):
        a = build_small_world(64, 6, seed=5)
        b = build_small_world(64, 6, seed=5)
        assert np.array_equal(a.g_indices, b.g_indices)
        assert np.array_equal(a.g_dist, b.g_dist)


class TestSmallWorldProperty:
    def test_clustering_g_exceeds_h(self, net_small):
        from repro.graphs import average_clustering

        ch = average_clustering(net_small.h.indptr, net_small.h.indices, sample=None)
        cg = average_clustering(net_small.g_indptr, net_small.g_indices, sample=None)
        assert cg > 3 * ch  # the L edges are what make it small-world

    def test_to_networkx_simple(self, net_small):
        g = net_small.to_networkx()
        assert g.number_of_nodes() == net_small.n
        assert g.number_of_edges() == net_small.g_indices.shape[0] // 2

"""Unit tests for BFS ball/sphere utilities (Definitions 5-6)."""

import numpy as np
import pytest

from repro.graphs.balls import (
    ball,
    ball_sizes,
    bfs_distances,
    connected_components,
    distances_to_set,
    eccentricity,
    gather_neighbors,
    largest_component_mask,
    sphere,
)


def path_csr(n):
    """CSR adjacency of the path 0-1-...-(n-1)."""
    indptr = [0]
    indices = []
    for v in range(n):
        nbrs = [u for u in (v - 1, v + 1) if 0 <= u < n]
        indices.extend(nbrs)
        indptr.append(len(indices))
    return np.array(indptr, dtype=np.int64), np.array(indices, dtype=np.int64)


def cycle_csr(n):
    indptr = np.arange(n + 1, dtype=np.int64) * 2
    indices = np.empty(2 * n, dtype=np.int64)
    for v in range(n):
        indices[2 * v] = (v - 1) % n
        indices[2 * v + 1] = (v + 1) % n
    return indptr, indices


class TestGatherNeighbors:
    def test_empty_input(self):
        indptr, indices = path_csr(5)
        out = gather_neighbors(indptr, indices, np.array([], dtype=np.int64))
        assert out.shape == (0,)

    def test_single_node(self):
        indptr, indices = path_csr(5)
        out = gather_neighbors(indptr, indices, np.array([2]))
        assert sorted(out.tolist()) == [1, 3]

    def test_multiple_nodes_concatenated(self):
        indptr, indices = path_csr(5)
        out = gather_neighbors(indptr, indices, np.array([0, 4]))
        assert sorted(out.tolist()) == [1, 3]

    def test_ragged_rows(self):
        indptr, indices = path_csr(5)
        out = gather_neighbors(indptr, indices, np.array([0, 2]))
        assert sorted(out.tolist()) == [1, 1, 3]


class TestBfsDistances:
    def test_path_distances(self):
        indptr, indices = path_csr(6)
        dist = bfs_distances(indptr, indices, 0)
        assert dist.tolist() == [0, 1, 2, 3, 4, 5]

    def test_cycle_distances(self):
        indptr, indices = cycle_csr(8)
        dist = bfs_distances(indptr, indices, 0)
        assert dist.tolist() == [0, 1, 2, 3, 4, 3, 2, 1]

    def test_max_depth_truncates(self):
        indptr, indices = path_csr(6)
        dist = bfs_distances(indptr, indices, 0, max_depth=2)
        assert dist.tolist() == [0, 1, 2, -1, -1, -1]

    def test_multi_source(self):
        indptr, indices = path_csr(7)
        dist = bfs_distances(indptr, indices, np.array([0, 6]))
        assert dist.tolist() == [0, 1, 2, 3, 2, 1, 0]

    def test_blocked_nodes_cut_paths(self):
        indptr, indices = path_csr(5)
        blocked = np.zeros(5, dtype=bool)
        blocked[2] = True
        dist = bfs_distances(indptr, indices, 0, blocked=blocked)
        assert dist.tolist() == [0, 1, -1, -1, -1]

    def test_blocked_source_ignored(self):
        indptr, indices = path_csr(3)
        blocked = np.zeros(3, dtype=bool)
        blocked[0] = True
        dist = bfs_distances(indptr, indices, np.array([0, 2]), blocked=blocked)
        assert dist.tolist() == [-1, 1, 0]


class TestBallsAndSpheres:
    def test_ball_on_h(self, h_small):
        b1 = ball(h_small.indptr, h_small.indices, 0, 1)
        assert 0 in b1
        assert set(h_small.unique_neighbors(0).tolist()) <= set(b1.tolist())

    def test_sphere_disjoint_union(self, h_small):
        b2 = set(ball(h_small.indptr, h_small.indices, 3, 2).tolist())
        pieces = [
            set(sphere(h_small.indptr, h_small.indices, 3, r).tolist())
            for r in range(3)
        ]
        assert pieces[0] == {3}
        assert b2 == pieces[0] | pieces[1] | pieces[2]

    def test_ball_sizes_monotone(self, h_small):
        sizes = ball_sizes(h_small.indptr, h_small.indices, 0, 4)
        assert sizes[0] == 1
        assert np.all(np.diff(sizes) >= 0)

    def test_ball_growth_bounded_by_observation1(self, h_small):
        # |B(v, r)| < (d-1)^{r+1} for r >= 2 (Observation 1).
        sizes = ball_sizes(h_small.indptr, h_small.indices, 0, 3)
        for r in (2, 3):
            assert sizes[r] < (h_small.d - 1) ** (r + 1) + h_small.d


class TestEccentricityComponents:
    def test_path_eccentricity(self):
        indptr, indices = path_csr(5)
        assert eccentricity(indptr, indices, 0) == 4
        assert eccentricity(indptr, indices, 2) == 2

    def test_disconnected_raises(self):
        indptr = np.array([0, 1, 2, 3, 4], dtype=np.int64)
        indices = np.array([1, 0, 3, 2], dtype=np.int64)  # two disjoint edges
        with pytest.raises(ValueError, match="not connected"):
            eccentricity(indptr, indices, 0)

    def test_components_two_islands(self):
        indptr = np.array([0, 1, 2, 3, 4], dtype=np.int64)
        indices = np.array([1, 0, 3, 2], dtype=np.int64)
        labels = connected_components(indptr, indices)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_largest_component_with_blocked(self):
        indptr, indices = path_csr(7)
        blocked = np.zeros(7, dtype=bool)
        blocked[2] = True  # splits into {0,1} and {3,4,5,6}
        mask = largest_component_mask(indptr, indices, blocked=blocked)
        assert mask.tolist() == [False, False, False, True, True, True, True]

    def test_distances_to_empty_set(self):
        indptr, indices = path_csr(4)
        dist = distances_to_set(indptr, indices, np.array([], dtype=np.int64))
        assert np.all(dist == -1)

    def test_distances_to_set_matches_min(self):
        indptr, indices = path_csr(8)
        targets = np.array([0, 7])
        dist = distances_to_set(indptr, indices, targets)
        for v in range(8):
            assert dist[v] == min(v, 7 - v)

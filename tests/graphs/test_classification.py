"""Unit tests for Definition 7-9 node classification."""

import numpy as np
import pytest

from repro.graphs import (
    classify_nodes,
    full_tree_ball_size,
    is_locally_tree_like,
    ltl_mask,
    tree_radius,
)


class TestTreeRadius:
    def test_paper_formula_floor(self):
        # log2(1024) / (10 log2 8) = 10/30 -> floors to 0 -> clamped to 1.
        assert tree_radius(1024, 8) == 1

    def test_grows_eventually(self):
        assert tree_radius(2**40, 4) >= 2


class TestFullTreeBallSize:
    @pytest.mark.parametrize(
        "d,r,size",
        [(8, 0, 1), (8, 1, 9), (8, 2, 65), (8, 3, 457), (4, 2, 17)],
    )
    def test_values(self, d, r, size):
        assert full_tree_ball_size(d, r) == size


class TestLocallyTreeLike:
    def test_mask_matches_pointwise(self, h_small):
        mask = ltl_mask(h_small, 1)
        for v in range(0, h_small.n, 7):
            assert mask[v] == is_locally_tree_like(h_small, v, 1)

    def test_radius_monotone(self, h_small):
        # LTL at radius 2 implies LTL at radius 1.
        m1 = ltl_mask(h_small, 1)
        m2 = ltl_mask(h_small, 2)
        assert np.all(~m2 | m1)

    def test_some_nodes_ltl_at_radius_1(self, h_small):
        # Lemma 21's envelope is 1 - O(n^-0.2): extremely slow convergence,
        # so at n=128 only a modest fraction is LTL (E01 shows the trend).
        frac = ltl_mask(h_small, 1).mean()
        assert 0.1 < frac < 1.0

    def test_ltl_node_has_full_ball(self, h_small):
        mask = ltl_mask(h_small, 1)
        v = int(np.flatnonzero(mask)[0])
        assert h_small.unique_neighbors(v).shape[0] == h_small.d


class TestClassify:
    def test_identities(self, net_small, byz_mask_small):
        sets = classify_nodes(net_small, byz_mask_small, radius=1, safe_radius=1)
        sizes = sets.sizes()
        n = net_small.n
        assert sizes["Byz"] + sizes["Honest"] == n
        assert sizes["LTL"] + sizes["NLT"] == n
        assert sizes["Safe"] + sizes["Unsafe"] == n
        assert sizes["BUS"] + sizes["Byz-safe"] == n

    def test_bad_is_union(self, net_small, byz_mask_small):
        sets = classify_nodes(net_small, byz_mask_small, radius=1, safe_radius=1)
        assert np.array_equal(sets.bad, sets.byz | sets.nlt)

    def test_byz_are_unsafe_for_bus(self, net_small, byz_mask_small):
        sets = classify_nodes(net_small, byz_mask_small, radius=1, safe_radius=1)
        # Byzantine nodes are at distance 0 from Bad, hence in BUS.
        assert np.all(sets.bus[byz_mask_small])

    def test_no_byzantine_no_bus_beyond_nlt(self, net_small):
        byz = np.zeros(net_small.n, dtype=bool)
        sets = classify_nodes(net_small, byz, radius=1, safe_radius=1)
        # With no Byzantine nodes, Bad = NLT, so BUS = Unsafe.
        assert np.array_equal(sets.bus, sets.unsafe)

    def test_wrong_shape_raises(self, net_small):
        with pytest.raises(ValueError, match="shape"):
            classify_nodes(net_small, np.zeros(3, dtype=bool), radius=1, safe_radius=1)

    def test_validate_passes(self, net_small, byz_mask_small):
        sets = classify_nodes(net_small, byz_mask_small, radius=1, safe_radius=1)
        sets.validate()  # should not raise

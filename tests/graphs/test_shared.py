"""Shared-memory network sharing: fidelity, immutability, lifecycle,
crash safety, and the parallel_map integration."""

import glob
import os
import pathlib
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.core import CountingConfig, run_counting
from repro.experiments.common import parallel_map
from repro.graphs import SharedNetwork
from repro.graphs.shared import _ATTACHED

CFG = CountingConfig(verification=False, max_phase=10)

_SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def _run_sum(network, seed):
    return int(run_counting(network, CFG, seed=seed).decided_phase.sum())


class TestSharedNetwork:
    def test_roundtrip_arrays_equal(self, net_small):
        with SharedNetwork.create(net_small) as shared:
            net2 = shared.net
            assert np.array_equal(net2.h.indptr, net_small.h.indptr)
            assert np.array_equal(net2.h.indices, net_small.h.indices)
            assert np.array_equal(net2.h.cycles, net_small.h.cycles)
            assert np.array_equal(net2.g_indptr, net_small.g_indptr)
            assert np.array_equal(net2.g_indices, net_small.g_indices)
            assert np.array_equal(net2.g_dist, net_small.g_dist)
            assert (net2.n, net2.d, net2.k) == (
                net_small.n,
                net_small.d,
                net_small.k,
            )
            net2.validate()

    def test_views_read_only(self, net_small):
        with SharedNetwork.create(net_small) as shared:
            with pytest.raises(ValueError):
                shared.net.h.indices[0] = 0

    def test_protocol_run_identical(self, net_small):
        with SharedNetwork.create(net_small) as shared:
            a = run_counting(net_small, CFG, seed=5)
            b = run_counting(shared.net, CFG, seed=5)
            assert np.array_equal(a.decided_phase, b.decided_phase)
            assert a.meter.as_dict() == b.meter.as_dict()

    def test_handle_pickles_without_segment(self, net_small):
        import pickle

        with SharedNetwork.create(net_small) as shared:
            blob = pickle.dumps(shared)
            assert len(blob) < 4096  # metadata only, no arrays
            clone = pickle.loads(blob)
            assert clone.name == shared.name
            # Attaching in the same process reuses POSIX shm by name.
            assert np.array_equal(clone.net.h.indices, net_small.h.indices)
            clone.close()

    def test_close_unlinks_and_clears_cache(self, net_small):
        shared = SharedNetwork.create(net_small)
        name = shared.name
        shared.net  # populate the attachment cache
        assert name in _ATTACHED
        shared.close()
        assert name not in _ATTACHED
        assert not glob.glob(f"/dev/shm/{name.lstrip('/')}")

    def test_views_survive_close(self, net_small):
        # Arrays handed out before close() must stay readable (the mapping
        # is kept alive even though the segment is unlinked) — a stale read
        # must never segfault the interpreter.
        shared = SharedNetwork.create(net_small)
        net2 = shared.net
        shared.close()
        assert int(net2.h.indptr[0]) == 0
        assert np.array_equal(net2.h.indices, net_small.h.indices)

    def test_close_without_views_releases_everything(self, net_small):
        shared = SharedNetwork.create(net_small)
        name = shared.name
        shared.close()  # .net never read: full close + unlink
        assert name not in _ATTACHED
        assert not glob.glob(f"/dev/shm/{name.lstrip('/')}")


class TestParallelMapSharedNetwork:
    def test_serial_network_calls(self, net_small):
        out = parallel_map(_run_sum, [1, 2], network=net_small)
        assert out == [_run_sum(net_small, 1), _run_sum(net_small, 2)]

    def test_sharded_matches_serial(self, net_small):
        serial = parallel_map(_run_sum, [1, 2, 3, 4], network=net_small)
        sharded = parallel_map(_run_sum, [1, 2, 3, 4], jobs=2, network=net_small)
        assert serial == sharded

    def test_segment_cleaned_up_after_map(self, net_small):
        before = set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/repro-*"))
        parallel_map(_run_sum, [1, 2], jobs=2, network=net_small)
        after = set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/repro-*"))
        assert after <= before


def _union_probe(networks, item):
    """Worker probe: does the shared payload carry the union CSR views?"""
    sizes, indptr, indices = networks.union_csr
    return (tuple(sizes), int(indptr[-1]), int(indices.shape[0]), item)


class TestSharedNetworkPackUnion:
    """The pack optionally ships the pre-concatenated union CSR."""

    def _nets(self):
        from repro.graphs import build_small_world

        return [build_small_world(n, 4, seed=n) for n in (24, 32)]

    def test_pack_ships_union_csr_views(self):
        from repro.graphs.shared import NetworkTuple, SharedNetworkPack
        from repro.sim.flood import stack_union_csr

        nets = self._nets()
        ref_sizes, ref_indptr, ref_indices = stack_union_csr(nets)
        with SharedNetworkPack.create(nets, union=True) as pack:
            attached = pack.nets
            assert isinstance(attached, NetworkTuple)
            sizes, indptr, indices = attached.union_csr
            assert tuple(sizes) == ref_sizes
            assert np.array_equal(indptr, ref_indptr)
            assert np.array_equal(indices, ref_indices)
            assert not indptr.flags.writeable
            assert not indices.flags.writeable

    def test_pack_without_union_has_no_csr(self):
        from repro.graphs.shared import SharedNetworkPack

        with SharedNetworkPack.create(self._nets()) as pack:
            assert pack.nets.union_csr is None

    def test_engine_adopts_shipped_csr(self):
        from repro.core.batch import run_counting_batch, run_counting_unionstack
        from repro.graphs.shared import SharedNetworkPack

        nets = self._nets()
        with SharedNetworkPack.create(nets, union=True) as pack:
            out = run_counting_unionstack(pack.nets, [3, 4], config=CFG)
        for g, net in enumerate(nets):
            for j, s in enumerate([3, 4]):
                ref = run_counting_batch(net, [s], config=CFG)[0]
                got = out[g * 2 + j]
                assert np.array_equal(ref.decided_phase, got.decided_phase)
                assert ref.meter.as_dict() == got.meter.as_dict()

    def test_parallel_map_union_payload_reaches_workers(self):
        from repro.sim.flood import stack_union_csr

        nets = self._nets()
        sizes, indptr, indices = stack_union_csr(nets)
        expected = (tuple(sizes), int(indptr[-1]), int(indices.shape[0]))
        serial = parallel_map(_union_probe, [1, 2], network=nets, union_csr=True)
        sharded = parallel_map(
            _union_probe, [1, 2], jobs=2, network=nets, union_csr=True
        )
        assert serial == sharded == [expected + (1,), expected + (2,)]


class _BoomError(RuntimeError):
    pass


def _raise_boom(network, item):
    raise _BoomError(f"boom on {item}")


def _raise_interrupt(network, item):
    raise KeyboardInterrupt


def _repro_segments() -> set:
    return set(glob.glob("/dev/shm/repro-*"))


class TestWorkerFailureUnlinksSegment:
    """Regression (PR 8): segments must not leak when a map dies.

    A raising worker used to propagate through ``pool.map`` with the
    ``with shared:`` unlink as the only line of defense; the resilient
    dispatch path must preserve that guarantee through retries, typed
    re-raise, and KeyboardInterrupt aborts.
    """

    def test_raising_worker_unlinks_segment(self, net_small):
        from repro.exec import RetryPolicy

        before = _repro_segments()
        with pytest.raises(_BoomError):
            parallel_map(
                _raise_boom,
                [1, 2, 3, 4],
                jobs=2,
                network=net_small,
                policy=RetryPolicy(max_retries=0),
            )
        assert _repro_segments() <= before

    def test_raising_worker_unlinks_pack_segment(self):
        from repro.exec import RetryPolicy
        from repro.graphs import build_small_world

        nets = [build_small_world(n, 4, seed=n) for n in (24, 32)]
        before = _repro_segments()
        with pytest.raises(_BoomError):
            parallel_map(
                _raise_boom,
                [1, 2, 3, 4],
                jobs=2,
                network=nets,
                policy=RetryPolicy(max_retries=0),
            )
        assert _repro_segments() <= before

    def test_keyboard_interrupt_mid_map_unlinks_segment(self, net_small):
        # A worker-raised KeyboardInterrupt aborts the map (never
        # retried) and the owner's context manager still unlinks.
        before = _repro_segments()
        with pytest.raises(KeyboardInterrupt):
            parallel_map(_raise_interrupt, [1, 2, 3, 4], jobs=2, network=net_small)
        assert _repro_segments() <= before

    def test_serial_raise_never_touches_shm(self, net_small):
        before = _repro_segments()
        with pytest.raises(_BoomError):
            parallel_map(_raise_boom, [1, 2], network=net_small)
        assert _repro_segments() <= before


class TestCrashSafeSegments:
    """PR 8: recognizable names, owner guards, and the orphan sweeper."""

    def test_segment_name_carries_owner_pid(self, net_small):
        with SharedNetwork.create(net_small) as shared:
            assert shared.name.startswith(f"repro-{os.getpid()}-")

    def test_create_failure_unlinks_partial_segment(self, net_small, monkeypatch):
        import numpy as np

        import repro.graphs.shared as shared_mod

        def explode(*args, **kwargs):
            raise MemoryError("simulated copy failure")

        before = _repro_segments()
        monkeypatch.setattr(np, "ndarray", explode)
        with pytest.raises(MemoryError):
            shared_mod.SharedNetwork.create(net_small)
        monkeypatch.undo()
        assert _repro_segments() <= before

    def test_cleanup_orphans_reaps_dead_owner_segment(self, tmp_path):
        from repro.graphs import cleanup_orphans

        # A segment named for a pid that cannot exist (> pid_max) is an
        # orphan by construction; shm segments are plain files in
        # /dev/shm, so creating one directly simulates an owner that
        # died without running any cleanup hook.
        name = "repro-99999999-deadbeef"
        path = f"/dev/shm/{name}"
        with open(path, "wb") as fh:
            fh.write(b"\0" * 16)
        try:
            removed = cleanup_orphans()
            assert name in removed
            assert not os.path.exists(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)

    def test_cleanup_orphans_spares_live_owner(self, net_small):
        from repro.graphs import cleanup_orphans

        with SharedNetwork.create(net_small) as shared:
            removed = cleanup_orphans()
            assert shared.name not in removed
            assert os.path.exists(f"/dev/shm/{shared.name}")

    def test_sigterm_guard_unlinks_owned_segments(self, tmp_path):
        # A real owner process killed with SIGTERM must leave no
        # segment behind (the chained signal guard unlinks before the
        # process dies with the conventional -SIGTERM status).
        code = (
            "import sys, time\n"
            f"sys.path.insert(0, {str(_SRC)!r})\n"
            "from repro.graphs import SharedNetwork\n"
            "from repro.graphs.smallworld import build_small_world\n"
            "net = build_small_world(32, 4, seed=3)\n"
            "sh = SharedNetwork.create(net)\n"
            "print(sh.name, flush=True)\n"
            "time.sleep(60)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", code], stdout=subprocess.PIPE, text=True
        )
        try:
            assert proc.stdout is not None
            name = proc.stdout.readline().strip()
            assert os.path.exists(f"/dev/shm/{name}")
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()
        assert proc.returncode == -signal.SIGTERM
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_forked_worker_exit_spares_owner_segment(self, net_small):
        # parallel_map tears its pool down with SIGTERM during crash
        # recovery; workers inherit the owner's _OWNED registry under
        # fork, and the pid check must keep their exit hooks from
        # unlinking the owner's live segment.  Exercised by mapping over
        # a live segment and checking it survives the pool's exit.
        with SharedNetwork.create(net_small) as shared:
            out = parallel_map(_run_sum, [1, 2], jobs=2, network=net_small)
            assert len(out) == 2
            assert os.path.exists(f"/dev/shm/{shared.name}")


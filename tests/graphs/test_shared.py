"""Shared-memory network sharing: fidelity, immutability, lifecycle, and
the parallel_map integration."""

import glob

import numpy as np
import pytest

from repro.core import CountingConfig, run_counting
from repro.experiments.common import parallel_map
from repro.graphs import SharedNetwork
from repro.graphs.shared import _ATTACHED

CFG = CountingConfig(verification=False, max_phase=10)


def _run_sum(network, seed):
    return int(run_counting(network, CFG, seed=seed).decided_phase.sum())


class TestSharedNetwork:
    def test_roundtrip_arrays_equal(self, net_small):
        with SharedNetwork.create(net_small) as shared:
            net2 = shared.net
            assert np.array_equal(net2.h.indptr, net_small.h.indptr)
            assert np.array_equal(net2.h.indices, net_small.h.indices)
            assert np.array_equal(net2.h.cycles, net_small.h.cycles)
            assert np.array_equal(net2.g_indptr, net_small.g_indptr)
            assert np.array_equal(net2.g_indices, net_small.g_indices)
            assert np.array_equal(net2.g_dist, net_small.g_dist)
            assert (net2.n, net2.d, net2.k) == (
                net_small.n,
                net_small.d,
                net_small.k,
            )
            net2.validate()

    def test_views_read_only(self, net_small):
        with SharedNetwork.create(net_small) as shared:
            with pytest.raises(ValueError):
                shared.net.h.indices[0] = 0

    def test_protocol_run_identical(self, net_small):
        with SharedNetwork.create(net_small) as shared:
            a = run_counting(net_small, CFG, seed=5)
            b = run_counting(shared.net, CFG, seed=5)
            assert np.array_equal(a.decided_phase, b.decided_phase)
            assert a.meter.as_dict() == b.meter.as_dict()

    def test_handle_pickles_without_segment(self, net_small):
        import pickle

        with SharedNetwork.create(net_small) as shared:
            blob = pickle.dumps(shared)
            assert len(blob) < 4096  # metadata only, no arrays
            clone = pickle.loads(blob)
            assert clone.name == shared.name
            # Attaching in the same process reuses POSIX shm by name.
            assert np.array_equal(clone.net.h.indices, net_small.h.indices)
            clone.close()

    def test_close_unlinks_and_clears_cache(self, net_small):
        shared = SharedNetwork.create(net_small)
        name = shared.name
        shared.net  # populate the attachment cache
        assert name in _ATTACHED
        shared.close()
        assert name not in _ATTACHED
        assert not glob.glob(f"/dev/shm/{name.lstrip('/')}")

    def test_views_survive_close(self, net_small):
        # Arrays handed out before close() must stay readable (the mapping
        # is kept alive even though the segment is unlinked) — a stale read
        # must never segfault the interpreter.
        shared = SharedNetwork.create(net_small)
        net2 = shared.net
        shared.close()
        assert int(net2.h.indptr[0]) == 0
        assert np.array_equal(net2.h.indices, net_small.h.indices)

    def test_close_without_views_releases_everything(self, net_small):
        shared = SharedNetwork.create(net_small)
        name = shared.name
        shared.close()  # .net never read: full close + unlink
        assert name not in _ATTACHED
        assert not glob.glob(f"/dev/shm/{name.lstrip('/')}")


class TestParallelMapSharedNetwork:
    def test_serial_network_calls(self, net_small):
        out = parallel_map(_run_sum, [1, 2], network=net_small)
        assert out == [_run_sum(net_small, 1), _run_sum(net_small, 2)]

    def test_sharded_matches_serial(self, net_small):
        serial = parallel_map(_run_sum, [1, 2, 3, 4], network=net_small)
        sharded = parallel_map(_run_sum, [1, 2, 3, 4], jobs=2, network=net_small)
        assert serial == sharded

    def test_segment_cleaned_up_after_map(self, net_small):
        before = set(glob.glob("/dev/shm/psm_*"))
        parallel_map(_run_sum, [1, 2], jobs=2, network=net_small)
        after = set(glob.glob("/dev/shm/psm_*"))
        assert after <= before


def _union_probe(networks, item):
    """Worker probe: does the shared payload carry the union CSR views?"""
    sizes, indptr, indices = networks.union_csr
    return (tuple(sizes), int(indptr[-1]), int(indices.shape[0]), item)


class TestSharedNetworkPackUnion:
    """The pack optionally ships the pre-concatenated union CSR."""

    def _nets(self):
        from repro.graphs import build_small_world

        return [build_small_world(n, 4, seed=n) for n in (24, 32)]

    def test_pack_ships_union_csr_views(self):
        from repro.graphs.shared import NetworkTuple, SharedNetworkPack
        from repro.sim.flood import stack_union_csr

        nets = self._nets()
        ref_sizes, ref_indptr, ref_indices = stack_union_csr(nets)
        with SharedNetworkPack.create(nets, union=True) as pack:
            attached = pack.nets
            assert isinstance(attached, NetworkTuple)
            sizes, indptr, indices = attached.union_csr
            assert tuple(sizes) == ref_sizes
            assert np.array_equal(indptr, ref_indptr)
            assert np.array_equal(indices, ref_indices)
            assert not indptr.flags.writeable
            assert not indices.flags.writeable

    def test_pack_without_union_has_no_csr(self):
        from repro.graphs.shared import SharedNetworkPack

        with SharedNetworkPack.create(self._nets()) as pack:
            assert pack.nets.union_csr is None

    def test_engine_adopts_shipped_csr(self):
        from repro.core.batch import run_counting_batch, run_counting_unionstack
        from repro.graphs.shared import SharedNetworkPack

        nets = self._nets()
        with SharedNetworkPack.create(nets, union=True) as pack:
            out = run_counting_unionstack(pack.nets, [3, 4], config=CFG)
        for g, net in enumerate(nets):
            for j, s in enumerate([3, 4]):
                ref = run_counting_batch(net, [s], config=CFG)[0]
                got = out[g * 2 + j]
                assert np.array_equal(ref.decided_phase, got.decided_phase)
                assert ref.meter.as_dict() == got.meter.as_dict()

    def test_parallel_map_union_payload_reaches_workers(self):
        from repro.sim.flood import stack_union_csr

        nets = self._nets()
        sizes, indptr, indices = stack_union_csr(nets)
        expected = (tuple(sizes), int(indptr[-1]), int(indices.shape[0]))
        serial = parallel_map(_union_probe, [1, 2], network=nets, union_csr=True)
        sharded = parallel_map(
            _union_probe, [1, 2], jobs=2, network=nets, union_csr=True
        )
        assert serial == sharded == [expected + (1,), expected + (2,)]

"""Unit tests for the H(n, d) random regular multigraph model."""

import numpy as np
import pytest

from repro.graphs import generate_hgraph
from repro.graphs.hgraph import hamiltonian_cycle_edges


class TestGeneration:
    def test_basic_shape(self, h_small):
        assert h_small.n == 128
        assert h_small.d == 8
        assert h_small.cycles.shape == (4, 128)
        assert h_small.indices.shape == (128 * 8,)

    def test_every_node_has_degree_d(self, h_small):
        degs = np.bincount(h_small.indices, minlength=h_small.n)
        assert np.all(degs == h_small.d)

    def test_indptr_regular(self, h_small):
        assert np.array_equal(
            h_small.indptr, np.arange(129, dtype=np.int64) * 8
        )

    def test_cycles_are_permutations(self, h_small):
        for c in range(4):
            assert np.array_equal(
                np.sort(h_small.cycles[c]), np.arange(128)
            )

    def test_deterministic_given_seed(self):
        a = generate_hgraph(64, 6, seed=3)
        b = generate_hgraph(64, 6, seed=3)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.cycles, b.cycles)

    def test_different_seeds_differ(self):
        a = generate_hgraph(64, 6, seed=3)
        b = generate_hgraph(64, 6, seed=4)
        assert not np.array_equal(a.cycles, b.cycles)

    def test_connected(self, h_small):
        # A single Hamiltonian cycle already connects everything.
        assert h_small.is_connected()

    def test_no_self_loops(self, h_small):
        for v in range(h_small.n):
            assert v not in h_small.neighbors(v)

    def test_adjacency_symmetric_with_multiplicity(self, h_small):
        counts = {}
        for v in range(h_small.n):
            for u in h_small.neighbors(v):
                counts[(v, int(u))] = counts.get((v, int(u)), 0) + 1
        for (v, u), c in counts.items():
            assert counts.get((u, v), 0) == c

    def test_num_edges(self, h_small):
        assert h_small.num_edges == 128 * 8 // 2

    def test_minimum_degree_two(self):
        g = generate_hgraph(16, 2, seed=0)
        assert np.all(np.bincount(g.indices, minlength=16) == 2)


class TestValidationErrors:
    def test_rejects_odd_degree(self):
        with pytest.raises(ValueError, match="even"):
            generate_hgraph(16, 7, seed=0)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError, match="n >= 3"):
            generate_hgraph(2, 2, seed=0)

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            generate_hgraph(16, 0, seed=0)


class TestCycleEdges:
    def test_cycle_edge_count(self):
        u, v = hamiltonian_cycle_edges(np.array([0, 2, 1, 3]))
        assert u.shape == (4,)
        pairs = set(zip(u.tolist(), v.tolist()))
        assert (3, 0) in pairs  # wraps around

    def test_edge_list_matches_num_edges(self, h_small):
        u, v = h_small.edge_list()
        assert u.shape[0] == h_small.num_edges


class TestConversions:
    def test_to_scipy_row_sums(self, h_small):
        mat = h_small.to_scipy()
        sums = np.asarray(mat.sum(axis=1)).ravel()
        assert np.all(sums == h_small.d)

    def test_to_networkx(self, h_small):
        g = h_small.to_networkx()
        assert g.number_of_nodes() == h_small.n
        assert g.number_of_edges() == h_small.num_edges
        degrees = dict(g.degree())
        assert all(deg == h_small.d for deg in degrees.values())

    def test_multi_edge_count_nonnegative(self, h_small):
        assert h_small.multi_edge_count() >= 0

    def test_unique_neighbors_subset(self, h_small):
        for v in (0, 5, 99):
            uniq = h_small.unique_neighbors(v)
            assert set(uniq.tolist()) == set(h_small.neighbors(v).tolist())

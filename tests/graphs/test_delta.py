"""ResidentGraph: incremental churn patches equal cold rebuilds.

The resident engine's bit-for-bit guarantee bottoms out here: after any
sequence of join/leave deltas, :meth:`ResidentGraph.snapshot` must equal
the network a cold :func:`build_small_world` produces from the same
Hamiltonian cycles — same CSR, same lattice chunks, same everything the
estimation engines consume.
"""

import numpy as np
import pytest

from repro.graphs import (
    AppliedDelta,
    ResidentGraph,
    build_small_world,
    hgraph_from_cycles,
)
from repro.sim.rng import derive_seed, make_rng


def assert_net_equal(a, b):
    """Full structural equality of two SmallWorldNetworks."""
    assert (a.n, a.d, a.k) == (b.n, b.d, b.k)
    assert np.array_equal(a.h.cycles, b.h.cycles)
    assert np.array_equal(a.h.indptr, b.h.indptr)
    assert np.array_equal(a.h.indices, b.h.indices)
    assert np.array_equal(a.g_indptr, b.g_indptr)
    assert np.array_equal(a.g_indices, b.g_indices)
    assert np.array_equal(a.g_dist, b.g_dist)


def cold_rebuild(net):
    """Re-derive the network from its cycles through the cold constructor."""
    return build_small_world(net.n, net.d, h=hgraph_from_cycles(net.h.cycles), k=net.k)


class TestAdoption:
    def test_from_network_snapshot_identity(self):
        net = build_small_world(48, 4, seed=3)
        rg = ResidentGraph.from_network(net)
        assert rg.snapshot() is net  # adoption caches the instance
        assert rg.n == net.n
        assert rg.version == 0

    def test_sample_matches_cold_build(self):
        rg = ResidentGraph.sample(48, 4, seed=7)
        assert_net_equal(rg.snapshot(), build_small_world(48, 4, seed=7))


class TestDeltaEqualsColdRebuild:
    @pytest.mark.parametrize("d", [4, 6, 8])
    def test_churn_sequence_bit_for_bit(self, d):
        rng = make_rng(derive_seed(42, "delta-test", d))
        n0 = int(rng.integers(40, 90))
        rg = ResidentGraph.sample(n0, d, seed=int(rng.integers(1 << 30)))
        for _ in range(6):
            n = rg.n
            n_leave = int(rng.integers(0, max(1, n // 8) + 1))
            leaves = rng.choice(n, size=n_leave, replace=False)
            joins = int(rng.integers(0, 6))
            applied = rg.apply_delta(leaves, joins, rng)
            assert isinstance(applied, AppliedDelta)
            assert sorted(applied.left) == sorted(int(v) for v in leaves)
            assert len(applied.joined) == joins
            snap = rg.snapshot()
            assert snap.n == n - n_leave + joins
            assert_net_equal(snap, cold_rebuild(snap))

    def test_snapshot_cached_per_version(self):
        rg = ResidentGraph.sample(40, 4, seed=1)
        rng = make_rng(0)
        rg.apply_delta([3], 1, rng)
        s1 = rg.snapshot()
        assert rg.snapshot() is s1  # cached until the next delta
        rg.apply_delta([], 1, rng)
        assert rg.snapshot() is not s1
        assert rg.version == 2


class TestLocality:
    def test_small_delta_recomputes_partial_ball(self):
        # One replacement on a large sparse ring: the (k-1)-ball affected
        # set must stay well below the full graph.
        rg = ResidentGraph.sample(4096, 8, seed=5)
        applied = rg.apply_delta([100], 1, make_rng(9))
        assert 0 < applied.recomputed < rg.n // 2
        snap = rg.snapshot()
        assert_net_equal(snap, cold_rebuild(snap))

    def test_joiners_get_fresh_top_ids(self):
        rg = ResidentGraph.sample(50, 4, seed=2)
        applied = rg.apply_delta([10, 20], 3, make_rng(4))
        assert applied.joined == (48, 49, 50)  # ids [n_live, n_live + joins)


class TestValidation:
    def test_rng_type_checked(self):
        rg = ResidentGraph.sample(40, 4, seed=0)
        with pytest.raises(TypeError, match="Generator"):
            rg.apply_delta([1], 1, 123)

    def test_rejects_bad_leaves(self):
        rg = ResidentGraph.sample(40, 4, seed=0)
        rng = make_rng(0)
        with pytest.raises(ValueError):
            rg.apply_delta([40], 0, rng)  # out of range
        with pytest.raises(ValueError):
            rg.apply_delta([1, 1], 0, rng)  # duplicate

    def test_rejects_negative_joins_and_tiny_result(self):
        rg = ResidentGraph.sample(40, 4, seed=0)
        rng = make_rng(0)
        with pytest.raises(ValueError):
            rg.apply_delta([], -1, rng)
        with pytest.raises(ValueError):
            rg.apply_delta(range(38), 0, rng)  # would leave n < 3

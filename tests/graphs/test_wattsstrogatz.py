"""Unit tests for the Watts-Strogatz comparison model."""

import numpy as np
import pytest

from repro.graphs import generate_watts_strogatz
from repro.graphs.balls import bfs_distances


class TestRingLattice:
    def test_p_zero_is_ring(self):
        g = generate_watts_strogatz(32, 4, 0.0, seed=1)
        assert np.all(g.degrees() == 4)
        assert sorted(g.neighbors(0).tolist()) == [1, 2, 30, 31]

    def test_p_zero_connected(self):
        g = generate_watts_strogatz(40, 4, 0.0, seed=1)
        dist = bfs_distances(g.indptr, g.indices, 0)
        assert np.all(dist != -1)


class TestRewiring:
    def test_edge_count_preserved(self):
        g0 = generate_watts_strogatz(64, 6, 0.0, seed=2)
        g1 = generate_watts_strogatz(64, 6, 0.5, seed=2)
        assert g0.indices.shape[0] == g1.indices.shape[0]

    def test_rewired_degrees_vary(self):
        g = generate_watts_strogatz(128, 6, 1.0, seed=2)
        degs = g.degrees()
        assert degs.min() < degs.max()  # the paper's point: not regular

    def test_symmetry(self):
        g = generate_watts_strogatz(48, 4, 0.3, seed=3)
        pairs = set()
        for v in range(48):
            for u in g.neighbors(v):
                pairs.add((v, int(u)))
        assert all((u, v) in pairs for (v, u) in pairs)

    def test_deterministic(self):
        a = generate_watts_strogatz(48, 4, 0.3, seed=3)
        b = generate_watts_strogatz(48, 4, 0.3, seed=3)
        assert np.array_equal(a.indices, b.indices)


class TestValidation:
    def test_odd_ring_degree_rejected(self):
        with pytest.raises(ValueError, match="even"):
            generate_watts_strogatz(32, 5, 0.1)

    def test_bad_p_rejected(self):
        with pytest.raises(ValueError, match="rewire_p"):
            generate_watts_strogatz(32, 4, 1.5)

    def test_small_n_rejected(self):
        with pytest.raises(ValueError, match="n > ring_degree"):
            generate_watts_strogatz(4, 4, 0.1)

"""Command-line interface: ``python -m reprolint src/ --format github``.

Exit status is 0 when every finding is suppressed or grandfathered and
1 otherwise, so the command doubles as the CI gate.  ``--format github``
emits workflow annotation commands; ``--format json`` is for tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import DEFAULT_BASELINE, load_baseline, split_findings, write_baseline
from .engine import Finding, lint_paths
from .rules import ALL_RULES, RULES_BY_CODE


def _render(findings: list[Finding], fmt: str, stream) -> None:
    if fmt == "json":
        payload = [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
                "autofixable": f.autofixable,
            }
            for f in findings
        ]
        print(json.dumps(payload, indent=2), file=stream)
        return
    for f in findings:
        if fmt == "github":
            print(
                f"::error file={f.path},line={f.line},col={f.col},"
                f"title=reprolint {f.code}::{f.message}",
                file=stream,
            )
        else:
            print(f.render(), file=stream)


def _list_rules(stream) -> None:
    for rule in ALL_RULES:
        fixable = "autofixable" if rule.autofixable else "manual fix"
        print(f"{rule.code}  {rule.name:28s} [{fixable}]  {rule.summary}", file=stream)


def main(argv: list[str] | None = None, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Engine-invariant static analysis for the repro library.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "github", "json"),
        default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline JSON (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules(stream)
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m reprolint src/)")

    rules = ALL_RULES
    if args.select:
        codes = [code.strip() for code in args.select.split(",") if code.strip()]
        unknown = [code for code in codes if code not in RULES_BY_CODE]
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(unknown)}")
        rules = tuple(RULES_BY_CODE[code] for code in codes)

    findings = lint_paths(args.paths, rules)

    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE
    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"reprolint: wrote {len(findings)} finding(s) to {baseline_path}",
            file=stream,
        )
        return 0

    grandfathered: list[Finding] = []
    if baseline_path.is_file():
        findings, grandfathered = split_findings(
            findings, load_baseline(baseline_path)
        )

    _render(findings, args.format, stream)
    tail = f", {len(grandfathered)} baselined" if grandfathered else ""
    print(
        f"reprolint: {len(findings)} finding(s) in "
        f"{len(rules)} rule(s){tail}",
        file=stream,
    )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""``python -m reprolint`` entry point."""

import sys

from .cli import main

sys.exit(main())

"""Analyzer core: module contexts, disable comments, and the lint drivers.

A :class:`ModuleContext` wraps one parsed module with everything rules
need — the AST annotated with parent links, the source lines, and the
parsed ``# reprolint: disable=...`` comments.  The ``lint_*`` functions
run a rule set over sources or files and return :class:`Finding` lists
with suppressed findings already removed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "ModuleContext",
    "ancestors",
    "idents_in",
    "lint_path",
    "lint_paths",
    "lint_source",
]

_PARENT = "_reprolint_parent"

#: ``# reprolint: disable=R001,R002`` or ``# reprolint: disable=all``
_DISABLE_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    autofixable: bool = False

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class ModuleContext:
    """One module's source, parsed tree, and suppression table."""

    def __init__(self, source: str, path: str):
        self.source = source
        self.path = str(path).replace("\\", "/")
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.path)
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                setattr(child, _PARENT, node)
        self.disabled = self._parse_disables()

    # ------------------------------------------------------------------
    def _parse_disables(self) -> dict[int, set[str] | None]:
        """Line -> suppressed codes (``None`` means every code)."""
        table: dict[int, set[str] | None] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _DISABLE_RE.search(text)
            if match is None:
                continue
            spec = {part.strip() for part in match.group(1).split(",") if part.strip()}
            codes: set[str] | None = None if "all" in spec else spec
            table[lineno] = codes
            # A comment-only disable line covers the statement below it.
            if text.strip().startswith("#"):
                table.setdefault(lineno + 1, codes)
        return table

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.disabled.get(finding.line, ...)
        if codes is ...:
            return False
        return codes is None or finding.code in codes

    def matches(self, *suffixes: str) -> bool:
        """Whether this module's path ends with any of ``suffixes``."""
        return any(self.path.endswith(suffix) for suffix in suffixes)


# ----------------------------------------------------------------------
# AST helpers shared by the rules.
# ----------------------------------------------------------------------
def idents_in(node: ast.AST) -> set[str]:
    """Every ``Name`` id and ``Attribute`` attr in the subtree."""
    found: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            found.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            found.add(sub.attr)
    return found


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """The parent chain of ``node``, innermost first."""
    current = getattr(node, _PARENT, None)
    while current is not None:
        yield current
        current = getattr(current, _PARENT, None)


# ----------------------------------------------------------------------
# Drivers.
# ----------------------------------------------------------------------
def _default_rules() -> Sequence:
    from .rules import ALL_RULES

    return ALL_RULES


def lint_source(
    source: str, path: str = "<string>", rules: Sequence | None = None
) -> list[Finding]:
    """Lint one source string; ``path`` scopes the path-sensitive rules.

    Path-scoped exemptions (``rules.PATH_RULE_EXEMPTIONS``) are applied
    here, after the rules run: an exempted code is dropped for every line
    of a matching module, the config-file analogue of an inline disable.
    """
    from .rules import exempt_codes_for

    ctx = ModuleContext(source, path)
    exempt = exempt_codes_for(ctx.path)
    findings: list[Finding] = []
    for rule in rules if rules is not None else _default_rules():
        if rule.code in exempt:
            continue
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding):
                findings.append(finding)
    return sorted(findings)


def lint_path(path: str | Path, rules: Sequence | None = None) -> list[Finding]:
    """Lint one file."""
    target = Path(path)
    return lint_source(target.read_text(encoding="utf-8"), str(target), rules)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for entry in paths:
        target = Path(entry)
        if target.is_dir():
            yield from sorted(target.rglob("*.py"))
        elif target.suffix == ".py":
            yield target


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence | None = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (dirs walked recursively)."""
    active = list(rules) if rules is not None else list(_default_rules())
    findings: list[Finding] = []
    for target in iter_python_files(paths):
        findings.extend(lint_path(target, active))
    return findings

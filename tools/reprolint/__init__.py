"""reprolint — project-specific static analysis for the batched engine stack.

Five PRs of fused engines made the hot path fast; every invariant that
keeps it fast and bit-for-bit correct holds purely by convention.  This
package turns those conventions into machine-checked contracts:

========  ==========================================================
R001      no scalar Python loops over trials/nodes inside flooding
          rounds in hot-path modules
R002      int32-with-lazy-widening dtype policy for engine color state
R003      no array allocation lexically inside per-round loops
R004      ``Adversary`` subclasses must port the batch protocol
R005      Generator-only RNG discipline (no global ``np.random.*``)
R006      public engine entry points validate before array compute
========  ==========================================================

Findings on a line are suppressed with a ``# reprolint: disable=RXXX``
comment on the same line or on a comment-only line directly above, and
grandfathered findings live in a JSON baseline (see ``baseline.py``).

Usage::

    python -m reprolint src/ --format github

The analyzer is pure stdlib (``ast``) so it runs anywhere the test suite
runs; see ``CONTRIBUTING.md`` for the rationale behind each rule.
"""

from .engine import Finding, ModuleContext, lint_path, lint_paths, lint_source
from .rules import ALL_RULES, Rule

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleContext",
    "Rule",
    "lint_path",
    "lint_paths",
    "lint_source",
    "__version__",
]

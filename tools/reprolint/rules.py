"""The six engine-invariant rules (R001-R006).

Each rule is a class with a ``code``, a one-line ``summary``, an
``autofixable`` flag, and a ``check(ctx)`` generator yielding
:class:`~reprolint.engine.Finding` objects.  Path-sensitive rules scope
themselves via the module-path suffixes below, so fixture tests can
exercise them by linting snippets under the real engine paths.

The scoping constants encode where each invariant lives today; a new
hot-path module (e.g. a compiled-kernel backend) joins the contract by
adding its suffix here.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import Finding, ModuleContext, ancestors, idents_in

__all__ = ["ALL_RULES", "Rule", "RULES_BY_CODE"]

# ----------------------------------------------------------------------
# Scoping: which invariant applies to which engine modules.
# ----------------------------------------------------------------------
#: Modules whose flooding rounds are the library's hot path (R001, R003).
#: The kernel-backend modules are part of the contract (their bodies ARE
#: the hot path), but see PATH_RULE_EXEMPTIONS below.
HOT_PATH_MODULES = (
    "repro/core/batch.py",
    "repro/sim/flood.py",
    "repro/sim/backends/numpy_backend.py",
    "repro/sim/backends/numba_backend.py",
)

#: Path-scoped rule exemptions: path fragment -> rule codes suppressed for
#: every module whose normalized path contains the fragment.  The compiled
#: kernel backends intentionally write scalar loops (numba compiles them;
#: the pure-Python twins exist so the logic is testable without numba) and
#: allocate per call (the njit kernels fill caller buffers; the fallback
#: shims allocate like numpy always did), so R001/R003 — written for
#: *interpreted* engine code — do not apply there.  Scoped here rather
#: than via inline disables so the exemption is one audited policy line,
#: not a scatter of per-line pragmas (see CONTRIBUTING.md).
#: ``repro/exec/chaos.py`` is the fault-injection harness: its crash/hang/
#: raise schedules must be drawn from a seed universe that can never
#: collide with (or perturb) the simulation streams, so it deliberately
#: builds its own salted ``numpy.random`` generators instead of going
#: through ``repro.sim.rng`` — exactly what R005 exists to forbid in
#: engine code.  The exemption is load-bearing: a test pins that chaos.py
#: trips R005 without it.
PATH_RULE_EXEMPTIONS: dict[str, tuple[str, ...]] = {
    "repro/sim/backends/": ("R001", "R003"),
    "repro/exec/chaos.py": ("R005",),
}

#: Modules that are nothing *but* per-round kernel code: every function
#: there runs once per flooding round, so R001/R003 treat all of their
#: function bodies as kernel scope (no ``neighbor_max*`` name or lexical
#: round loop required).  Today that is exactly the set the path-scoped
#: exemption above suppresses — the contract stays visible and any new
#: non-compiled module under the fragment would need its own entry.
KERNEL_MODULE_FRAGMENTS = ("repro/sim/backends/",)


def _is_kernel_module(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in KERNEL_MODULE_FRAGMENTS)


def exempt_codes_for(path: str) -> frozenset[str]:
    """Rule codes suppressed for ``path`` by the path-scoped config."""
    normalized = path.replace("\\", "/")
    codes: set[str] = set()
    for fragment, fragment_codes in PATH_RULE_EXEMPTIONS.items():
        if fragment in normalized:
            codes.update(fragment_codes)
    return frozenset(codes)

#: The module owning the int32-with-lazy-widening color state (R002).
DTYPE_MODULES = ("repro/core/batch.py",)

#: The one module allowed to construct numpy Generators (R005 exemption).
RNG_MODULES = ("repro/sim/rng.py",)

#: Public engine entry points that must validate before array compute
#: (R006): module suffix -> function names.
ENTRY_POINTS = {
    "repro/core/batch.py": ("run_counting_batch", "run_counting_unionstack"),
    "repro/core/sweep.py": ("run_sweep", "run_multi_sweep"),
}

#: Helpers sanctioned to build int64 plan state (R002 exemption): the
#: typed plan normalizers own the adversary-value interface, and the
#: widening guards (``if plan_max > _INT32_MAX ...``) own the escalation.
SANCTIONED_WIDENING_HELPERS = ("_normalize_batch_plan",)
WIDENING_GUARD_IDENTS = {"_INT32_MAX", "_INT32_MIN", "state_dtype"}

#: Identifiers that name per-trial or per-node extents in the engines;
#: a Python loop drawing its iteration space from one of these inside a
#: flooding round is a scalar de-optimization (R001).
TRIAL_NODE_TOKENS = {
    "n",
    "n_pad",
    "rows_n",
    "n_nodes",
    "batch",
    "b_live",
    "n_trials",
    "trials",
    "live",
    "nodes",
    "cols",
}

#: Engine color/plan state arrays covered by the dtype policy (R002).
STATE_TOKENS = {
    "colors",
    "colors_bn",
    "colors_cn",
    "cur",
    "cur_t",
    "sent",
    "recv",
    "recv_t",
    "prev_kt",
    "prev_t",
    "k_last",
    "k_last_t",
}

#: numpy constructors that allocate fresh arrays (R003).
ALLOC_FUNCS = {
    "zeros",
    "empty",
    "full",
    "ones",
    "zeros_like",
    "empty_like",
    "full_like",
    "ones_like",
    "concatenate",
    "stack",
    "hstack",
    "vstack",
    "column_stack",
    "arange",
    "array",
    "tile",
}

#: Scalar adversary hooks and the batch hooks that must accompany them
#: (R004).  ``bind`` is exempt: the base ``bind_batch`` delegates to it.
BATCH_HOOK_PAIRS = (
    ("subphase_plan", "batch_subphase_plan"),
    ("topology_claims", "batch_topology_claims"),
)

#: Entry-point calls whose names mark typed validation (R006).
VALIDATOR_PREFIXES = ("_validate", "_normalize", "_split_seed")


# ----------------------------------------------------------------------
# Shared AST predicates.
# ----------------------------------------------------------------------
def _np_attr_path(node: ast.AST) -> tuple[str, ...] | None:
    """``np.maximum.reduceat`` -> ("np", "maximum", "reduceat")."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        path = tuple(reversed(parts))
        if path[0] in ("np", "numpy"):
            return path
    return None


def _is_round_loop(node: ast.AST) -> bool:
    """A ``for t in range(1, phase + 1)``-shaped flooding-round loop."""
    if not isinstance(node, ast.For):
        return False
    if isinstance(node.target, ast.Name) and node.target.id in ("t", "_t"):
        return True
    call = node.iter
    if (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "range"
    ):
        span = idents_in(ast.Tuple(elts=list(call.args), ctx=ast.Load()))
        return bool(span & {"phase", "rounds"})
    return False


def _in_round_loop(node: ast.AST) -> bool:
    return any(_is_round_loop(parent) for parent in ancestors(node))


def _in_widening_context(node: ast.AST) -> bool:
    """Inside a sanctioned helper or a lazy-widening ``if`` guard."""
    for parent in ancestors(node):
        if (
            isinstance(parent, ast.FunctionDef)
            and parent.name in SANCTIONED_WIDENING_HELPERS
        ):
            return True
        if isinstance(parent, ast.If) and (
            idents_in(parent.test) & WIDENING_GUARD_IDENTS
        ):
            return True
    return False


def _enclosing_function(node: ast.AST) -> ast.FunctionDef | None:
    for parent in ancestors(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return parent  # type: ignore[return-value]
    return None


# ----------------------------------------------------------------------
# Rule base.
# ----------------------------------------------------------------------
class Rule:
    """One engine invariant; subclasses yield findings from ``check``."""

    code = "R000"
    name = "abstract-rule"
    summary = ""
    autofixable = False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            autofixable=self.autofixable,
        )


class ScalarLoopRule(Rule):
    """R001: no Python loops over trials/nodes inside flooding rounds.

    The batched engines spend their rounds in single ``neighbor_max``
    kernel calls over ``(n, B)`` state; a ``for``/``while`` that draws
    its iteration space from a trial or node extent inside a round loop
    (or inside a ``neighbor_max*`` kernel method) reintroduces the
    O(rounds * B) Python overhead the whole stack exists to amortize.
    Per-trial work is legal at subphase granularity and above.
    """

    code = "R001"
    name = "no-scalar-hot-loop"
    summary = "Python loop over trials/nodes inside a flooding round"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.matches(*HOT_PATH_MODULES):
            return
        kernel_module = _is_kernel_module(ctx.path)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.While):
                if _in_round_loop(node):
                    yield self.finding(
                        ctx,
                        node,
                        "while loop inside a flooding round loop; rounds "
                        "must be straight-line vectorized kernel calls",
                    )
                continue
            if not isinstance(node, ast.For) or _is_round_loop(node):
                continue
            span = idents_in(node.iter)
            hot = span & TRIAL_NODE_TOKENS
            if not hot:
                continue
            where = None
            if _in_round_loop(node):
                where = "inside a flooding round loop"
            else:
                func = _enclosing_function(node)
                if func is not None and (
                    func.name.startswith("neighbor_max") or kernel_module
                ):
                    where = f"in kernel method {func.name}()"
            if where is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"Python for-loop over {'/'.join(sorted(hot))} {where}; "
                    "vectorize over the batch axis instead",
                )


class DtypePolicyRule(Rule):
    """R002: engine color state is int32 until a plan forces widening.

    Color/plan state arrays start as int32 and may only become int64
    through the sanctioned lazy-widening sites: the typed plan
    normalizers and blocks guarded by the ``_INT32_MAX`` overflow test.
    An unconditional int64 allocation doubles the hot path's memory
    traffic for every run that never sees a huge adversary value.
    ``dtype=int`` is flagged everywhere: it is the platform default
    integer, which breaks the explicit-width policy silently.
    """

    code = "R002"
    name = "dtype-policy"
    summary = "int64/platform-int allocation outside the widening helpers"
    autofixable = True  # dtype=int -> dtype=np.int64 is a mechanical rewrite

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if (
                    keyword.arg == "dtype"
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id == "int"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "dtype=int is the platform default integer; spell "
                        "the width explicitly (np.int32 / np.int64)",
                    )
        if not ctx.matches(*DTYPE_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and target.id in STATE_TOKENS):
                continue
            mentions_int64 = any(
                path is not None and path[-1] == "int64"
                for path in map(_np_attr_path, ast.walk(node.value))
            )
            if mentions_int64 and not _in_widening_context(node):
                yield self.finding(
                    ctx,
                    node,
                    f"int64 allocation for engine state '{target.id}' outside "
                    "the sanctioned lazy-widening helpers; state starts int32 "
                    "and widens only under the _INT32_MAX guard",
                )


class AllocDisciplineRule(Rule):
    """R003: no array allocation lexically inside per-round loops.

    Every scratch array a flooding round touches is preallocated at
    subphase setup and updated in place (``out=``, ``np.copyto``); an
    allocator call inside the round loop turns O(1) allocations per
    subphase into O(phase) per subphase and defeats the buffer reuse
    the kernels are written around.
    """

    code = "R003"
    name = "no-alloc-in-round"
    summary = "array allocation inside a flooding round loop"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.matches(*HOT_PATH_MODULES):
            return
        kernel_module = _is_kernel_module(ctx.path)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _np_attr_path(node.func)
            if path is None or len(path) != 2 or path[1] not in ALLOC_FUNCS:
                continue
            in_kernel_body = kernel_module and _enclosing_function(node) is not None
            if (_in_round_loop(node) or in_kernel_body) and not _in_widening_context(
                node
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"np.{path[1]} inside a flooding round loop; preallocate "
                    "the buffer at subphase setup and update in place",
                )


class BatchProtocolRule(Rule):
    """R004: ``Adversary`` subclasses must port the batch protocol.

    A subclass that overrides a scalar hook without the matching batch
    hook silently diverges on the batched engines: the inherited batch
    implementation replays the *base* semantics (or a stale parent's)
    column by column.  Either port the hook pair or wrap the scalar
    class in ``PerTrialAdversaryBatch`` and disable this rule at the
    class definition.
    """

    code = "R004"
    name = "adversary-batch-protocol"
    summary = "Adversary subclass missing its batch protocol hook"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = {
                base.id if isinstance(base, ast.Name) else base.attr
                for base in node.bases
                if isinstance(base, (ast.Name, ast.Attribute))
            }
            if not any(name.endswith("Adversary") for name in base_names):
                continue
            if "PerTrialAdversaryBatch" in base_names:
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for scalar, batch in BATCH_HOOK_PAIRS:
                if scalar in methods and batch not in methods:
                    yield self.finding(
                        ctx,
                        node,
                        f"{node.name} overrides {scalar}() without "
                        f"{batch}(); port the batch hook or wrap the class "
                        "in PerTrialAdversaryBatch",
                    )


class RngDisciplineRule(Rule):
    """R005: seeded Generators from ``sim/rng.py`` only.

    Global-state ``np.random.*`` calls (and ad-hoc ``default_rng``
    construction) bypass the salted stream-splitting discipline that
    keeps every consumer's draws independent of every other consumer;
    one stray call makes trial reproducibility depend on call order.
    Only ``repro/sim/rng.py`` may construct numpy Generators.
    """

    code = "R005"
    name = "rng-discipline"
    summary = "global-state np.random call outside sim/rng.py"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.matches(*RNG_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _np_attr_path(node.func)
            if path is not None and len(path) >= 2 and path[1] == "random":
                called = ".".join(path)
                yield self.finding(
                    ctx,
                    node,
                    f"{called}() call outside sim/rng.py; use "
                    "repro.sim.rng.make_rng / stream for seeded Generators",
                )


class EagerValidationRule(Rule):
    """R006: entry points validate inputs before any array compute.

    The public engines promise typed ``ValueError``/``TypeError``
    rejections *before* touching numpy state, so a malformed sweep axis
    fails in microseconds instead of after a partial allocation.  Each
    configured entry point must therefore call one of its validators
    (``_validate*`` / ``_normalize*`` / ``_split_seed*``) before the
    first ``np.*`` call in its body.
    """

    code = "R006"
    name = "eager-validation"
    summary = "entry point computes on arrays before validating inputs"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        entry_names: tuple[str, ...] = ()
        for suffix, names in ENTRY_POINTS.items():
            if ctx.matches(suffix):
                entry_names = names
                break
        if not entry_names:
            return
        for node in ctx.tree.body:
            if not isinstance(node, ast.FunctionDef) or node.name not in entry_names:
                continue
            first_validator: ast.Call | None = None
            first_compute: ast.Call | None = None
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                callee = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else ""
                )
                if callee.startswith(VALIDATOR_PREFIXES):
                    if first_validator is None or (
                        (sub.lineno, sub.col_offset)
                        < (first_validator.lineno, first_validator.col_offset)
                    ):
                        first_validator = sub
                elif _np_attr_path(func) is not None:
                    if first_compute is None or (
                        (sub.lineno, sub.col_offset)
                        < (first_compute.lineno, first_compute.col_offset)
                    ):
                        first_compute = sub
            if first_validator is None:
                yield self.finding(
                    ctx,
                    node,
                    f"entry point {node.name}() never calls a typed "
                    "validator (_validate* / _normalize* / _split_seed*)",
                )
            elif first_compute is not None and (
                (first_compute.lineno, first_compute.col_offset)
                < (first_validator.lineno, first_validator.col_offset)
            ):
                yield self.finding(
                    ctx,
                    first_compute,
                    f"entry point {node.name}() calls "
                    f"np.{_np_attr_path(first_compute.func)[-1]} at line "
                    f"{first_compute.lineno} before its first validator "
                    f"call at line {first_validator.lineno}",
                )


ALL_RULES: tuple[Rule, ...] = (
    ScalarLoopRule(),
    DtypePolicyRule(),
    AllocDisciplineRule(),
    BatchProtocolRule(),
    RngDisciplineRule(),
    EagerValidationRule(),
)

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}

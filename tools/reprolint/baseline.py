"""Grandfathered-finding baseline.

A baseline is a JSON file listing findings that predate a rule and are
accepted until someone pays down the debt.  A finding matches a baseline
entry on exact ``(path, code, line)`` — line drift invalidates the entry
on purpose, so edits near a grandfathered violation force a fresh look.
Regenerate with ``python -m reprolint ... --update-baseline``.
"""

from __future__ import annotations

import json
from pathlib import Path

from .engine import Finding

__all__ = ["DEFAULT_BASELINE", "load_baseline", "split_findings", "write_baseline"]

#: Where the CLI looks when ``--baseline`` is not given (cwd-relative,
#: i.e. the repo root in CI and normal invocations).
DEFAULT_BASELINE = Path("tools/reprolint/baseline.json")

_VERSION = 1


def load_baseline(path: str | Path) -> set[tuple[str, str, int]]:
    """Load the ``(path, code, line)`` keys grandfathered by ``path``."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported baseline version {data.get('version')!r}")
    return {
        (entry["path"], entry["code"], int(entry["line"]))
        for entry in data.get("findings", [])
    }


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write every finding in ``findings`` as the new grandfather set."""
    payload = {
        "version": _VERSION,
        "findings": [
            {
                "path": f.path,
                "code": f.code,
                "line": f.line,
                "message": f.message,
            }
            for f in sorted(findings)
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_findings(
    findings: list[Finding], baseline: set[tuple[str, str, int]]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (fresh, grandfathered) against ``baseline``."""
    fresh: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        key = (finding.path, finding.code, finding.line)
        (old if key in baseline else fresh).append(finding)
    return fresh, old

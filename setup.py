"""Legacy setup shim: environments without the `wheel` package cannot build
PEP 660 editable wheels, so `pip install -e .` falls back to this."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)

"""P2P overlay bootstrap: size estimation as a preprocessing step.

Run:  python examples/p2p_bootstrap.py

The paper's motivation (Section 1): protocols for Byzantine agreement,
leader election and sampling on expander overlays *assume* knowledge of
(an estimate of) log n.  This example closes the loop for one such
downstream task — almost-everywhere broadcast:

1. nodes run Algorithm 2 to learn L ≈ c log n under Byzantine faults;
2. each node derives its flooding time-to-live TTL = ceil(L) + slack from
   its own local estimate (no global coordination);
3. an honest source floods a payload with that TTL, and we measure how
   many honest nodes are reached — with the TTL sized by the estimate, the
   broadcast covers essentially everyone while a naive constant TTL fails.
"""

import numpy as np

from repro import estimate_network_size
from repro.adversary import placement_for_delta
from repro.graphs.balls import bfs_distances
from repro.graphs import build_small_world

N, D, SEED = 2048, 8, 13


def broadcast_coverage(net, byz_mask, source: int, ttl: np.ndarray) -> float:
    """Fraction of honest nodes reached by flooding from ``source`` when
    every node relays only while its own TTL allows (Byzantine nodes do
    not relay at all — the worst case for coverage)."""
    dist = bfs_distances(net.h.indptr, net.h.indices, source,
                         blocked=byz_mask)
    honest = ~byz_mask
    # A node at distance t is reached iff t <= TTL of the nodes on the
    # path; with per-node TTLs from local estimates, the binding value is
    # the receiving node's own TTL (relays refresh hop budgets).
    reached = (dist >= 0) & (dist <= ttl) & honest
    return float(reached.sum()) / float(honest.sum())


def main() -> None:
    net = build_small_world(N, D, seed=SEED)
    byz = placement_for_delta(net, 0.5, rng=SEED)
    print(f"overlay: n={N} (unknown to nodes), d={D}, "
          f"Byzantine={int(byz.sum())}")

    # Step 1: Byzantine counting under the early-stop attack.
    report = estimate_network_size(
        N, D, adversary="early-stop", byz_mask=byz, seed=SEED, network=net
    )
    estimates = report.result.decided_phase  # per-node phase = log-size estimate
    print(f"Algorithm 2 finished in {report.rounds} rounds; "
          f"median phase {report.median_phase:.0f}")

    # Step 2: derive per-node TTLs from the *local* estimates.
    slack = net.k  # absorb the inflation cap (ecc + k - 1)
    ttl = np.maximum(estimates, 1) + slack

    # Step 3: measure broadcast coverage from an honest source.
    source = int(np.flatnonzero(~byz)[0])
    covered = broadcast_coverage(net, byz, source, ttl)
    naive = broadcast_coverage(net, byz, source,
                               np.full(N, 2, dtype=np.int64))
    print(f"\nbroadcast coverage with estimate-derived TTLs: {covered:.1%}")
    print(f"broadcast coverage with naive TTL=2:            {naive:.1%}")
    assert covered > 0.95 > naive
    print("\nthe size estimate is exactly the missing ingredient — done.")


if __name__ == "__main__":
    main()

"""Scaling study: estimates, rounds and messages as n grows.

Run:  python examples/scaling_study.py

Sweeps n over powers of two and prints, per size: the median decided phase
(the protocol's log n estimate — linear in log n), total protocol rounds
(polylog; the paper's schedule accounting gives the Theta(log^3 n) upper
bound), and per-node per-round message load (constant).

Each size runs several seeds through the fused sweep engine
(:func:`repro.run_sweep`): the whole seed axis executes as one
trials-as-columns batch — bit-for-bit equal to per-seed scalar runs, at a
multiple of the trial throughput (see ``benchmarks/bench_batch.py``) — and
the reported numbers are medians over the seed batch rather than a single
draw.
"""

import numpy as np

from repro import CountingConfig, run_sweep
from repro.analysis.bounds import round_complexity_bound
from repro.analysis.stats import loglog_slope
from repro.graphs import build_small_world

D, SEED = 8, 3
SIZES = (256, 512, 1024, 2048, 4096)
TRIAL_SEEDS = (3, 4, 5, 6)


def main() -> None:
    print(f"{'n':>6} {'log2 n':>7} {'phase med':>10} {'rounds':>8} "
          f"{'paper bound':>12} {'msgs/round/node':>16}")
    log_ns, phases, rounds = [], [], []
    cfg = CountingConfig(verification=False)  # Algorithm 1
    for n in SIZES:
        net = build_small_world(n, D, seed=SEED)
        batch = run_sweep(net, seeds=TRIAL_SEEDS, configs=cfg).seed_batch()
        med = float(np.median(batch.median_phases()))
        total_rounds = int(np.median(batch.rounds()))
        bound = round_complexity_bound(n, 0.1, D, verification_cost=0)
        load = float(batch.messages().sum() / batch.rounds().sum() / n)
        print(f"{n:>6} {np.log2(n):>7.1f} {med:>10.0f} {total_rounds:>8} "
              f"{bound:>12} {load:>16.1f}")
        log_ns.append(np.log2(n))
        phases.append(med)
        rounds.append(total_rounds)

    slope, _ = np.polyfit(log_ns, phases, 1)
    exp, _ = loglog_slope(np.array(log_ns), np.array(rounds))
    print(f"\nmedian phase ≈ {slope:.2f} * log2 n   "
          f"(constant-factor estimate; anchor 1/log2(d-1) = "
          f"{1 / np.log2(D - 1):.2f})")
    print(f"rounds ≈ (log2 n)^{exp:.2f}            (paper: O(log^3 n))")


if __name__ == "__main__":
    main()

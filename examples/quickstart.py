"""Quickstart: estimate the size of a Byzantine small-world network.

Run:  python examples/quickstart.py

Builds a 2048-node small-world expander G = H(n,8) ∪ L, places the paper's
Byzantine budget B(n) = n^{1-delta} under the strongest downward attack
(early-stop), runs Algorithm 2, and prints what the honest nodes concluded.
"""

import numpy as np

from repro import estimate_network_size

N, D, DELTA, SEED = 2048, 8, 0.5, 42


def main() -> None:
    print(f"sampling G = H({N},{D}) ∪ L and running Algorithm 2 ...")
    report = estimate_network_size(
        N, D, delta=DELTA, adversary="early-stop", seed=SEED
    )

    print(f"\n  network size (hidden from nodes): n = {N}   log2 n = {np.log2(N):.1f}")
    print(f"  Byzantine nodes:                   {report.byz_count} (= n^(1-{DELTA}))")
    print(f"  adversary:                         {report.adversary_name}")
    print(f"  median decided phase:              {report.median_phase:.0f}")
    print(f"  median log2-size estimate:         {report.median_log2_estimate:.1f}")
    print(f"  honest nodes in constant-factor band: {report.fraction_in_band:.1%}")
    print(f"  protocol rounds:                   {report.rounds}")

    # The same network, no attack, for comparison.
    honest = estimate_network_size(N, D, adversary="honest", seed=SEED,
                                   network=report.network)
    print(f"\n  honest-run median phase:           {honest.median_phase:.0f}")
    print(f"  honest-run in-band fraction:       {honest.fraction_in_band:.1%}")

    assert report.fraction_decided == 1.0
    print("\nevery honest node terminated with an estimate — done.")


if __name__ == "__main__":
    main()

"""Attack lab: every baseline vs Algorithm 2 under the same adversaries.

Run:  python examples/attack_lab.py

Reproduces the paper's motivating contrast (Section 1.2): the classical
size-estimation protocols collapse under a *single* Byzantine node, while
Algorithm 2 holds a constant-factor estimate for (1-eps) of the honest
nodes under the full n^{1-delta} budget and the worst strategies we know.
"""

import numpy as np

from repro import estimate_network_size, practical_band
from repro.adversary import placement_for_delta
from repro.baselines import (
    run_convergecast,
    run_exponential_support,
    run_geometric_max,
)
from repro.graphs import build_small_world

N, D, SEED = 1024, 8, 7


def header(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    net = build_small_world(N, D, seed=SEED)
    one = np.zeros(N, dtype=bool)
    one[N // 3] = True

    header("baselines, one single Byzantine node")
    g = run_geometric_max(net, seed=SEED, byz_mask=one, attack="fake-max")
    print(f"geometric-max : median estimate {g.median_estimate():6.1f}"
          f"  (truth {g.true_log2_n:.1f})  -> broken")
    e = run_exponential_support(net, seed=SEED, repetitions=8, byz_mask=one,
                                attack="tiny")
    print(f"exp-support   : median estimate {e.median_estimate():6.3g}"
          f"  (truth {N})  -> broken")
    c = run_convergecast(net, byz_mask=one, attack="inflate")
    print(f"convergecast  : root count     {c.count_at_root:8d}"
          f"  (truth {N})  -> broken")

    header(f"Algorithm 2, full budget B(n) = n^0.5 = "
           f"{int(placement_for_delta(net, 0.5, rng=1).sum())} Byzantine nodes")
    band = practical_band(D)
    print(f"{'strategy':<16} {'in-band':>8} {'decided':>8} {'median phase':>13}")
    for name in ("honest", "early-stop", "inflation", "suppression",
                 "adaptive-record", "combo"):
        rep = estimate_network_size(N, D, delta=0.5, adversary=name,
                                    seed=SEED, network=net, band=band)
        print(f"{name:<16} {rep.fraction_in_band:>8.1%} "
              f"{rep.fraction_decided:>8.1%} {rep.median_phase:>13.0f}")

    header("the defense that makes it work (verification ablation)")
    from repro import CountingConfig

    for verify in (True, False):
        rep = estimate_network_size(
            N, D, delta=0.5, adversary="inflation", seed=SEED, network=net,
            config=CountingConfig(max_phase=16, verification=verify),
        )
        state = ("all honest nodes terminate, estimates capped"
                 if rep.fraction_decided == 1.0
                 else "NO node can ever terminate — network looks infinite")
        print(f"verification {'ON ' if verify else 'OFF'}: {state}")


if __name__ == "__main__":
    main()

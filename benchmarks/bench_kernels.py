"""Microbenchmarks of the library's computational kernels.

These are the pieces whose throughput determines how large an ``n`` the
experiment suite can reach: graph sampling, the vectorized flooding round,
and full protocol runs (Algorithm 1 and Algorithm 2).
"""

import numpy as np
import pytest

from repro.adversary import placement_for_delta
from repro.core import (
    CountingConfig,
    make_adversary,
    run_basic_counting,
    run_byzantine_counting,
)
from repro.graphs import build_small_world, generate_hgraph
from repro.sim.flood import FloodKernel

N = 1024
D = 8


@pytest.fixture(scope="module")
def net():
    return build_small_world(N, D, seed=3)


def test_bench_hgraph_generation(benchmark):
    g = benchmark(generate_hgraph, N, D, 5)
    assert g.n == N


def test_bench_small_world_build(benchmark):
    net = benchmark.pedantic(build_small_world, args=(N, D), kwargs={"seed": 5},
                             rounds=2, iterations=1)
    assert net.k == 3


def test_bench_flood_round(benchmark, net):
    kernel = FloodKernel(net.h.indptr, net.h.indices)
    values = np.random.default_rng(0).integers(1, 30, size=N)

    result = benchmark(kernel.neighbor_max, values)
    assert result.shape == (N,)


def test_bench_algorithm1(benchmark, net):
    result = benchmark.pedantic(
        run_basic_counting, args=(net,), kwargs={"seed": 7}, rounds=3, iterations=1
    )
    assert result.fraction_decided() == 1.0


def test_bench_algorithm2_early_stop(benchmark, net):
    byz = placement_for_delta(net, 0.5, rng=2)
    cfg = CountingConfig(max_phase=24)

    def run():
        return run_byzantine_counting(
            net, make_adversary("early-stop"), byz, config=cfg, seed=7
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.fraction_decided() == 1.0


def test_bench_algorithm2_inflation(benchmark, net):
    byz = placement_for_delta(net, 0.5, rng=2)
    cfg = CountingConfig(max_phase=24)

    def run():
        return run_byzantine_counting(
            net, make_adversary("inflation"), byz, config=cfg, seed=7
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.injections_rejected > 0

"""Microbenchmarks of the library's computational kernels.

These are the pieces whose throughput determines how large an ``n`` the
experiment suite can reach: graph sampling, the vectorized flooding round,
and full protocol runs (Algorithm 1 and Algorithm 2).

The backend x layout grid at the bottom times one batched flooding round
(``neighbor_max_stacked``, the engine hot path) for every registered
kernel backend that is available on this machine (numpy always; numba
when importable) against both CSR layouts the backends must cover:

* **regular** — a uniform-degree H-graph, the per-slot row-gather path;
* **ragged** — a block-diagonal union of two different-degree networks,
  the general ``reduceat`` / CSR-walk path the union stack uses when
  degrees differ.
"""

import numpy as np
import pytest

from repro.adversary import placement_for_delta
from repro.core import (
    CountingConfig,
    make_adversary,
    run_basic_counting,
    run_byzantine_counting,
)
from repro.graphs import build_small_world, generate_hgraph
from repro.sim.backends import available_backends
from repro.sim.flood import FloodKernel, UnionFloodKernel

N = 1024
D = 8

#: backend x layout grid scales (ISSUE: reference microbenchmark sizes).
GRID_NS = (1024, 4096)
GRID_B = 32


@pytest.fixture(scope="module")
def net():
    return build_small_world(N, D, seed=3)


def test_bench_hgraph_generation(benchmark):
    g = benchmark(generate_hgraph, N, D, 5)
    assert g.n == N


def test_bench_small_world_build(benchmark):
    net = benchmark.pedantic(build_small_world, args=(N, D), kwargs={"seed": 5},
                             rounds=2, iterations=1)
    assert net.k == 3


def test_bench_flood_round(benchmark, net):
    kernel = FloodKernel(net.h.indptr, net.h.indices)
    values = np.random.default_rng(0).integers(1, 30, size=N)

    result = benchmark(kernel.neighbor_max, values)
    assert result.shape == (N,)


def test_bench_algorithm1(benchmark, net):
    result = benchmark.pedantic(
        run_basic_counting, args=(net,), kwargs={"seed": 7}, rounds=3, iterations=1
    )
    assert result.fraction_decided() == 1.0


def test_bench_algorithm2_early_stop(benchmark, net):
    byz = placement_for_delta(net, 0.5, rng=2)
    cfg = CountingConfig(max_phase=24)

    def run():
        return run_byzantine_counting(
            net, make_adversary("early-stop"), byz, config=cfg, seed=7
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.fraction_decided() == 1.0


def test_bench_algorithm2_inflation(benchmark, net):
    byz = placement_for_delta(net, 0.5, rng=2)
    cfg = CountingConfig(max_phase=24)

    def run():
        return run_byzantine_counting(
            net, make_adversary("inflation"), byz, config=cfg, seed=7
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.injections_rejected > 0


# ----------------------------------------------------------------------
# Backend x layout grid: one stacked flooding round per combination.
# ----------------------------------------------------------------------


def _grid_kernel(layout: str, n: int, backend: str) -> FloodKernel:
    if layout == "regular":
        reg = build_small_world(n, D, seed=3)
        return FloodKernel(reg.h.indptr, reg.h.indices, backend=backend)
    # Ragged: two half-size blocks at different degrees, so no uniform
    # degree exists and the general reduceat / CSR-walk path runs.
    nets = [
        build_small_world(n // 2, D, seed=3),
        build_small_world(n // 2, 6, seed=4),
    ]
    return UnionFloodKernel.from_networks(nets, backend=backend)


@pytest.mark.parametrize("n", GRID_NS)
@pytest.mark.parametrize("layout", ["regular", "ragged"])
@pytest.mark.parametrize("backend", available_backends())
def test_bench_stacked_round_grid(benchmark, backend, layout, n):
    kernel = _grid_kernel(layout, n, backend)
    rng = np.random.default_rng(0)
    values = rng.integers(1, 30, size=(kernel.n, GRID_B), dtype=np.int32)
    out = np.empty_like(values)
    kernel.neighbor_max_stacked(values, out=out)  # warm (JIT-compiles numba)

    result = benchmark(kernel.neighbor_max_stacked, values, out=out)
    assert result.shape == (kernel.n, GRID_B)

"""Bench E08: regenerates the round complexity (Theorem 1) table.

Runs the experiment once under the benchmark clock and asserts its shape
checks; the rendered table is printed so ``--benchmark-only -s`` reproduces
the rows recorded in EXPERIMENTS.md.
"""

from repro.experiments import run_experiment


def test_bench_e08_rounds(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E08", "small", 1), rounds=1, iterations=1
    )
    print()
    print(result.render())
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"E08 shape checks failed: {failed}"

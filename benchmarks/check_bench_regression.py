"""Regression gate for the batched-engine benchmark trajectory.

Compares a freshly generated ``BENCH_batch.json`` against the committed
trajectory and fails when any workload's batched-vs-sequential *speedup*
drops by more than ``--threshold`` (default 30%), or when a committed
workload disappeared from the fresh run.  Workload mismatches in the
*other* direction — a fresh entry with no committed counterpart, which
happens on every branch that adds a benchmark before its trajectory is
committed — are reported as warnings, never errors; malformed entries
(missing ``workload``) are skipped with a warning on either side rather
than raising.  A committed workload that declares ``"requires"`` (an
optional accelerator such as the numba kernel backend) is only gated on
runners that can actually run it: when it is missing from the fresh
trajectory the gate assumes the backend is absent on this runner and
reports informationally instead of failing — the CI leg that installs
the accelerator still compares it for real.  Speedup is the dimensionless
per-workload throughput ratio, so it transfers across machines far better
than absolute trials/s — but it is still noisy on shared CI runners, so
the CI invocation passes ``--soft`` (regressions become warnings, exit 0)
while local runs gate hard::

    PYTHONPATH=src python benchmarks/bench_batch.py --json fresh.json
    python benchmarks/check_bench_regression.py fresh.json

The comparison only makes sense at matching scale: a fresh artifact whose
``(n, trials)`` metadata disagrees with the baseline's is reported as a
warning and skipped rather than failed (speedups are scale-dependent).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "..", "BENCH_batch.json")
DEFAULT_THRESHOLD = 0.30


def _emit(kind: str, message: str) -> None:
    """Print plainly, plus a GitHub annotation when running in Actions."""
    print(f"{kind.upper()}: {message}")
    if os.environ.get("GITHUB_ACTIONS"):
        print(f"::{kind}::{message}")


def compare(
    fresh: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> tuple[list[str], list[str]]:
    """Return (regressions, warnings) between two trajectory artifacts."""
    regressions: list[str] = []
    warnings: list[str] = []
    for key in ("n", "trials"):
        if fresh.get(key) != baseline.get(key):
            warnings.append(
                f"scale mismatch: fresh {key}={fresh.get(key)} vs baseline "
                f"{key}={baseline.get(key)}; speedups are scale-dependent, "
                "skipping the per-workload comparison"
            )
            return regressions, warnings
    fresh_by_name = {}
    for e in fresh.get("trajectory", []):
        name = e.get("workload")
        if name is None:
            warnings.append(f"fresh trajectory entry without a workload name: {e!r}")
            continue
        fresh_by_name[name] = e
    baseline_names = set()
    for entry in baseline.get("trajectory", []):
        name = entry.get("workload")
        if name is None:
            warnings.append(
                f"baseline trajectory entry without a workload name: {entry!r}"
            )
            continue
        baseline_names.add(name)
        if entry.get("mode") == "informational":
            # Recorded for trajectory visibility only (e.g. near-parity
            # comparisons whose ratio is machine noise) — never gated.
            continue
        base_speedup = entry.get("speedup")
        if base_speedup is None:
            continue
        fresh_entry = fresh_by_name.get(name)
        if fresh_entry is None:
            requires = entry.get("requires")
            if requires:
                # Optional-backend workloads are recorded only on runners
                # that have the accelerator (bench_batch gates them on
                # importability); their absence means "backend not
                # installed here", not "coverage silently dropped".
                warnings.append(
                    f"workload {name!r} (requires {requires}) missing from "
                    f"fresh trajectory — assuming {requires} is unavailable "
                    "on this runner, not gating it"
                )
            else:
                regressions.append(f"workload {name!r} missing from fresh trajectory")
            continue
        got = fresh_entry.get("speedup")
        floor = base_speedup * (1.0 - threshold)
        if got is None or got < floor:
            regressions.append(
                f"{name}: speedup {got if got is None else f'{got:.2f}'}x fell "
                f"below {floor:.2f}x (baseline {base_speedup:.2f}x minus "
                f"{threshold:.0%} tolerance)"
            )
    for name, fresh_entry in fresh_by_name.items():
        # The reverse direction: a fresh workload the baseline has never
        # seen (e.g. union_stack on the branch that introduces it, before
        # BENCH_batch.json is regenerated) is a warning, never an error.
        if name not in baseline_names:
            if fresh_entry.get("mode") == "informational":
                warnings.append(
                    f"informational workload {name!r} present in fresh "
                    "trajectory but not in the committed baseline (recorded "
                    "for visibility only, never gated)"
                )
            else:
                warnings.append(
                    f"workload {name!r} present in fresh trajectory but not in "
                    "the committed baseline; commit an updated BENCH_batch.json "
                    "to gate it"
                )
    return regressions, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly generated trajectory JSON")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="committed trajectory to compare against (default: repo BENCH_batch.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional speedup drop per workload (default 0.30)",
    )
    parser.add_argument(
        "--soft",
        action="store_true",
        help="report regressions as warnings and exit 0 (noisy shared runners)",
    )
    args = parser.parse_args(argv)

    with open(args.fresh) as fh:
        fresh = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    regressions, warnings = compare(fresh, baseline, args.threshold)
    for line in warnings:
        _emit("warning", line)
    if not regressions:
        if any(w.startswith("scale mismatch") for w in warnings):
            print("bench regression gate: SKIPPED (scale mismatch, nothing compared)")
        else:
            checked = len(baseline.get("trajectory", []))
            print(
                f"bench regression gate: OK ({checked} workloads within "
                f"{args.threshold:.0%} of the committed speedups)"
            )
        return 0
    for line in regressions:
        _emit("warning" if args.soft else "error", line)
    return 0 if args.soft else 1


if __name__ == "__main__":
    sys.exit(main())

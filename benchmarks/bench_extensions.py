"""Benchmarks for the extensions: the counting->agreement pipeline and the
dynamic-network trajectory."""

import numpy as np

from repro.adversary import placement_for_delta
from repro.core import CountingConfig, make_adversary, run_byzantine_counting
from repro.extensions import run_ae_agreement, track_size_over_epochs
from repro.graphs import build_small_world
from repro.sim.rng import make_rng


def test_bench_counting_to_agreement_pipeline(benchmark):
    net = build_small_world(1024, 8, seed=3)
    byz = placement_for_delta(net, 0.5, rng=1)
    rng = make_rng(2)
    inputs = (rng.random(net.n) < 0.7).astype(np.int8)

    def pipeline():
        counting = run_byzantine_counting(
            net, make_adversary("early-stop"), byz,
            config=CountingConfig(max_phase=24), seed=4,
        )
        budgets = np.maximum(counting.decided_phase, 1) * 3
        return run_ae_agreement(net, inputs, budgets, byz,
                                strategy="minority", seed=5)

    result = benchmark.pedantic(pipeline, rounds=2, iterations=1)
    assert result.almost_everywhere and result.validity


def test_bench_churn_trajectory(benchmark):
    def trajectory():
        return track_size_over_epochs(
            [256, 512, 1024], d=8, adversary="early-stop", delta=0.5,
            churn_rate=0.1, seed=6, config=CountingConfig(max_phase=20),
        )

    report = benchmark.pedantic(trajectory, rounds=1, iterations=1)
    assert report.tracks_growth()
    assert report.always_in_band(0.85)

"""Bench E07: regenerates the Theorem 1 accuracy table.

Runs the experiment once under the benchmark clock and asserts its shape
checks; the rendered table is printed so ``--benchmark-only -s`` reproduces
the rows recorded in EXPERIMENTS.md.
"""

from repro.experiments import run_experiment


def test_bench_e07_theorem1(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E07", "small", 1), rounds=1, iterations=1
    )
    print()
    print(result.render())
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"E07 shape checks failed: {failed}"

"""Throughput benchmark: sequential vs batched vs sharded trial sweeps.

The trial-batched engine (:func:`repro.core.batch.run_counting_batch`)
exists to make repeated-seed sweeps faster without changing any reported
statistic.  This benchmark quantifies the win three ways over the same
``B`` seeds of Algorithm 1 on one network:

* **sequential** — ``B`` independent :func:`repro.core.runner.run_counting`
  calls (the pre-batching code path);
* **batched** — one :func:`run_counting_batch` call (``(n, B)`` state
  matrices, stacked flood kernel);
* **sharded** — the batch split over worker processes via
  :func:`repro.experiments.common.parallel_map` (pays process spawn +
  pickling; only wins with multiple cores and large enough work).

Run standalone for a quick table (CI runs this as a smoke test)::

    PYTHONPATH=src python benchmarks/bench_batch.py --n 256 --trials 8

or under pytest-benchmark with the rest of the bench suite.  The reference
result on the development box: n=1024, B=32 -> batched is ~3.1-3.4x the
sequential trial throughput (single core; the sharded row needs >1 core to
be competitive).
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import CountingConfig, run_counting_batch
from repro.core.runner import run_counting
from repro.experiments.common import parallel_map
from repro.graphs import build_small_world

DEFAULT_N = 1024
DEFAULT_TRIALS = 32
CFG = CountingConfig(verification=False)


def _seeds(trials: int) -> list[int]:
    return [11 * b + 5 for b in range(trials)]


def run_sequential(net, seeds, config=CFG):
    return [run_counting(net, config=config, seed=s) for s in seeds]


def run_batched(net, seeds, config=CFG):
    return list(run_counting_batch(net, seeds, config=config))


class _Shard:
    """Picklable worker: rebuilds nothing, reuses the network via fork or
    re-pickles it under spawn; each shard runs one batched sub-sweep."""

    def __init__(self, net, config):
        self.net = net
        self.config = config

    def __call__(self, shard_seeds):
        return list(run_counting_batch(self.net, shard_seeds, config=self.config))


def run_sharded(net, seeds, config=CFG, jobs: int = 2):
    shards = [list(chunk) for chunk in np.array_split(seeds, jobs) if len(chunk)]
    parts = parallel_map(_Shard(net, config), shards, jobs=jobs)
    return [res for part in parts for res in part]


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------


def _net():
    return build_small_world(DEFAULT_N, 8, seed=3)


def test_bench_sequential_trials(benchmark):
    net = _net()
    seeds = _seeds(DEFAULT_TRIALS)
    results = benchmark.pedantic(
        run_sequential, args=(net, seeds), rounds=2, iterations=1
    )
    assert len(results) == DEFAULT_TRIALS


def test_bench_batched_trials(benchmark):
    net = _net()
    seeds = _seeds(DEFAULT_TRIALS)
    results = benchmark.pedantic(run_batched, args=(net, seeds), rounds=3, iterations=1)
    assert len(results) == DEFAULT_TRIALS


def test_batched_matches_sequential():
    """Guard: the speed win must not change any reported statistic."""
    net = build_small_world(256, 8, seed=3)
    seeds = _seeds(8)
    seq = run_sequential(net, seeds)
    bat = run_batched(net, seeds)
    for a, b in zip(seq, bat):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert a.meter.as_dict() == b.meter.as_dict()


# ----------------------------------------------------------------------
# Standalone smoke / comparison table
# ----------------------------------------------------------------------


def _time_best(fn, *args, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=DEFAULT_N)
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS)
    parser.add_argument("--jobs", type=int, default=2, help="shard worker count")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit nonzero unless batched/sequential speedup reaches this",
    )
    args = parser.parse_args(argv)

    net = build_small_world(args.n, 8, seed=3)
    seeds = _seeds(args.trials)
    run_batched(net, seeds[: min(4, len(seeds))])  # warm caches/plans

    t_seq, seq = _time_best(run_sequential, net, seeds, repeats=args.repeats)
    t_bat, bat = _time_best(run_batched, net, seeds, repeats=args.repeats)
    t_shd, shd = _time_best(run_sharded, net, seeds, repeats=args.repeats)

    for a, b in zip(seq, bat):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert a.meter.as_dict() == b.meter.as_dict()
    for a, c in zip(seq, shd):
        assert np.array_equal(a.decided_phase, c.decided_phase)

    print(f"n={args.n}, B={args.trials} trials, best of {args.repeats}")
    header = f"{'mode':<12}{'time':>10}{'trials/s':>12}{'speedup':>10}"
    print(header)
    print("-" * len(header))
    for name, t in (("sequential", t_seq), ("batched", t_bat), (f"sharded x{args.jobs}", t_shd)):
        print(f"{name:<12}{t * 1e3:>8.1f}ms{args.trials / t:>12.1f}{t_seq / t:>9.2f}x")

    speedup = t_seq / t_bat
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: batched speedup {speedup:.2f}x < required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

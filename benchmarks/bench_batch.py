"""Throughput benchmark: sequential vs batched vs sharded trial sweeps.

The trial-batched engine (:func:`repro.core.batch.run_counting_batch`)
exists to make repeated-seed sweeps faster without changing any reported
statistic.  This benchmark quantifies the win over the same ``B`` seeds on
one network, in four workloads:

* **honest** — Algorithm 1: ``B`` sequential ``run_counting`` calls vs one
  ``run_counting_batch`` call vs the batch sharded over worker processes
  (via :func:`repro.experiments.common.parallel_map` with shared-memory
  graph attachment — workers no longer unpickle the network per task);
* **byzantine** — Algorithm 2 under attack: the batched adversary fast
  path (vectorized ``batch_subphase_plan`` hooks) vs per-trial sequential
  ``run_counting`` with scalar hooks, for a representative strategy set;
* **sweep** — an E07-shaped (strategies x placements x seeds) grid through
  the fused sweep engine (:func:`repro.core.sweep.run_sweep`, per-trial
  Byzantine masks as batch columns) vs the nested scalar loops the
  experiments used to run;
* **multi_net** — an E08-shaped size sweep at n in {256, 512, 1024}: the
  padded multi-network batch (:func:`repro.core.batch.run_counting_multinet`,
  all sizes as columns of one trials-as-columns state) vs the per-size
  loop of scalar trials; a secondary ungated entry compares against the
  per-size *batched* loop (same kernel work, so that ratio hovers near
  1x — the padded path's wins are the fused grid API and cross-size
  sharding, not raw per-round arithmetic);
* **union_stack** — the same size sweep through the zero-padding
  block-diagonal union stack
  (:func:`repro.core.batch.run_counting_unionstack`, all sizes as row
  blocks of one (sum n, B) state).  Gated against the per-size *batched*
  loop — the stronger reference the padded layout only tied: one
  row-gather per round over the concatenated CSR drops the padded
  elementwise waste and the per-segment scratch copies, so this entry
  must stay above 1x.  A secondary ungated entry tracks union vs the
  padded fused path;
* **lossy** — the scenario-pack channel axis: ``B`` trials under a lossy
  and noisy :class:`repro.sim.channel.ChannelModel` as ONE batched call vs
  the per-seed loop of single-trial batches (the scalar runner has no
  channel axis, so batch-of-1 calls are the sequential reference — the
  channel stream is per trial, making the two bit-for-bit comparable);
* **service** — a continuous-estimation deployment under churn: E epochs
  of (estimate B trials, then churn the overlay) through the resident
  engine (:class:`repro.service.ResidentEngine` — incremental CSR
  patches, warm flood kernel) vs the cold per-epoch loop (rebuild +
  re-validate the graph and a fresh kernel every epoch).  The gated
  speedup is cold/resident; the entry also records sustained
  queries/sec under churn for both paths;
* **baseline** — the geometric-max estimator, scalar vs trials-as-columns
  batch.

When the optional numba accelerator is importable, two extra gated
workloads compare the compiled kernel backend against the numpy backend
on identical work: **honest-numba** (the single-network batch) and
**union_stack-numba** (the concatenated union layout, where the fused
CSR-walk kernel shines).  They are recorded only on runners that can
actually execute numba — never fabricated — and carry a ``requires``
key so the regression gate skips them informationally elsewhere.

Run standalone for a quick table (CI runs this as a smoke test and uploads
the JSON trajectory)::

    PYTHONPATH=src python benchmarks/bench_batch.py --n 256 --trials 8
    PYTHONPATH=src python benchmarks/bench_batch.py --json BENCH_batch.json

or under pytest-benchmark with the rest of the bench suite.  Reference
results on the development box at n=1024, B=32: honest batched ~3x the
sequential trial throughput; byzantine batched 2-3.5x depending on the
strategy (early-stop ends runs after a few phases, so fixed costs weigh
more; inflation floods every phase and batches best).
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.adversary import placement_for_delta
from repro.baselines import run_geometric_max, run_geometric_max_batch
from repro.core import (
    CountingConfig,
    make_adversary,
    run_counting_batch,
    run_counting_multinet,
    run_counting_unionstack,
    run_sweep,
)
from repro.core.runner import run_counting
from repro.experiments.common import parallel_map
from repro.graphs import build_small_world, hgraph_from_cycles
from repro.service import ChurnDelta, ResidentEngine
from repro.sim.backends import backend_available
from repro.sim.channel import ChannelModel
from repro.sim.rng import derive_seed, make_rng

DEFAULT_N = 1024
DEFAULT_TRIALS = 32
CFG = CountingConfig(verification=False)
BYZ_CFG = CountingConfig()
BYZ_STRATEGIES = ("early-stop", "inflation", "adaptive-record")
SWEEP_STRATEGIES = BYZ_STRATEGIES
SWEEP_PLACEMENTS = 4
MULTI_NS = (256, 512, 1024)
#: The scenario-pack channel the lossy workload runs under: a moderate
#: drop rate plus light value noise, enough to lengthen runs realistically
#: without stalling them.
LOSSY_CHANNEL = ChannelModel(loss_p=0.15, noise_p=0.05, noise_amp=2)
SERVICE_EPOCHS = 4
# Fraction of nodes replaced per epoch (>= 1 node).  Kept small on
# purpose: churn between consecutive estimation rounds is a few nodes,
# and the lattice's (k-1)-ball geometry makes the incremental patch
# near-global once many nodes change at once (see repro.graphs.delta).
SERVICE_CHURN = 0.001


def _seeds(trials: int) -> list[int]:
    return [11 * b + 5 for b in range(trials)]


def run_sequential(net, seeds, config=CFG):
    return [run_counting(net, config=config, seed=s) for s in seeds]


def run_batched(net, seeds, config=CFG, backend=None):
    return list(run_counting_batch(net, seeds, config=config, backend=backend))


def _shard_task(net, task):
    """Module-level worker: one batched sub-sweep on the shared network."""
    shard_seeds, config = task
    return list(run_counting_batch(net, list(shard_seeds), config=config))


def run_sharded(net, seeds, config=CFG, jobs: int = 2):
    """Shard the batch over processes; the graph rides in shared memory."""
    shards = [
        (list(chunk), config)
        for chunk in np.array_split(seeds, jobs)
        if len(chunk)
    ]
    parts = parallel_map(_shard_task, shards, jobs=jobs, network=net)
    return [res for part in parts for res in part]


def run_lossy_per_seed(net, seeds, config=CFG, channel=LOSSY_CHANNEL):
    """Per-seed single-trial batches under the channel.

    The scalar runner has no channel axis, so the sequential reference is
    a loop of batch-of-1 calls; each trial's channel stream is its own
    (spawned per trial, sized by the trial's network), so the loop equals
    the fused batch bit for bit.
    """
    out = []
    for s in seeds:
        out.extend(run_counting_batch(net, [s], config=config, channel=channel))
    return out


def run_lossy_batched(net, seeds, config=CFG, channel=LOSSY_CHANNEL):
    return list(run_counting_batch(net, seeds, config=config, channel=channel))


def run_byz_sequential(net, seeds, byz, strategy: str, config=BYZ_CFG):
    return [
        run_counting(
            net, config=config, seed=s, adversary=make_adversary(strategy), byz_mask=byz
        )
        for s in seeds
    ]


def run_byz_batched(net, seeds, byz, strategy: str, config=BYZ_CFG):
    return list(
        run_counting_batch(
            net,
            seeds,
            config=config,
            adversary_factory=lambda: make_adversary(strategy),
            byz_mask=byz,
        )
    )


def _sweep_placements(net, count: int = SWEEP_PLACEMENTS):
    """E07-shaped placement axis: the paper's budget at distinct draws."""
    return [placement_for_delta(net, 0.5, rng=100 + i) for i in range(count)]


def run_sweep_sequential(
    net, seeds, placements, strategies=SWEEP_STRATEGIES, config=BYZ_CFG
):
    """The nested scalar loops the experiments ran before the fused sweep.

    Cell order (strategy, placement, seed) matches ``run_sweep``'s flat
    grid order, so results compare index for index.
    """
    out = []
    for strategy in strategies:
        for byz in placements:
            for s in seeds:
                out.append(
                    run_counting(
                        net,
                        config=config,
                        seed=s,
                        adversary=make_adversary(strategy),
                        byz_mask=byz,
                    )
                )
    return out


def run_sweep_fused(
    net, seeds, placements, strategies=SWEEP_STRATEGIES, config=BYZ_CFG
):
    return run_sweep(
        net,
        seeds=seeds,
        configs=config,
        placements=placements,
        strategies=list(strategies),
    ).results


def _multi_nets(ns=MULTI_NS):
    return [build_small_world(n, 8, seed=3) for n in ns]


def run_multinet_sequential(nets, seeds, config=CFG):
    """The per-size loop the scaling experiments ran: scalar trials per n."""
    return [run_counting(net, config=config, seed=s) for net in nets for s in seeds]


def run_multinet_batched_loop(nets, seeds, config=CFG):
    """Per-size loop over the single-network batched engine (PR 1's path)."""
    out = []
    for net in nets:
        out.extend(run_counting_batch(net, seeds, config=config))
    return out


def run_multinet_fused(nets, seeds, config=CFG):
    """All sizes as columns of ONE padded trials-as-columns batch."""
    trial_nets = [net for net in nets for _ in seeds]
    trial_seeds = [s for _ in nets for s in seeds]
    return list(run_counting_multinet(trial_nets, trial_seeds, config=config))


def run_multinet_union(nets, seeds, config=CFG, backend=None):
    """All sizes as row blocks of ONE zero-padding union-stack batch.

    Results come back network-major ((network, seed) grid order), matching
    ``run_multinet_batched_loop`` / ``run_multinet_fused`` index for index.
    """
    return list(run_counting_unionstack(nets, seeds, config=config, backend=backend))


def run_service_resident(
    n, seeds, epochs=SERVICE_EPOCHS, churn=SERVICE_CHURN, config=CFG
):
    """E epochs of (estimate, then churn) through the resident engine.

    The engine keeps the graph and flood kernel warm: each epoch patches
    the CSR incrementally (:class:`repro.graphs.delta.ResidentGraph`) and
    rebinds the kernel in place.  The churn deltas derive from a fixed
    seed stream, so every invocation replays the identical trajectory.
    """
    engine = ResidentEngine(config=config)
    engine.add_overlay("svc", n=n, d=8, seed=3)
    rng = make_rng(derive_seed(3, "bench-service"))
    out = []
    for _ in range(epochs):
        out.extend(engine.run_epoch("svc", seeds))
        n_now = engine.network("svc").n
        cnt = max(1, int(round(churn * n_now)))
        leaves = tuple(int(v) for v in rng.choice(n_now, size=cnt, replace=False))
        engine.apply_churn("svc", ChurnDelta(leaves, cnt), rng)
    return out


def _service_snapshots(n, epochs=SERVICE_EPOCHS, churn=SERVICE_CHURN):
    """The per-epoch networks of the resident trajectory (untimed replay)."""
    engine = ResidentEngine(config=CFG)
    engine.add_overlay("svc", n=n, d=8, seed=3)
    rng = make_rng(derive_seed(3, "bench-service"))
    snaps = []
    for _ in range(epochs):
        snaps.append(engine.network("svc"))
        n_now = engine.network("svc").n
        cnt = max(1, int(round(churn * n_now)))
        leaves = tuple(int(v) for v in rng.choice(n_now, size=cnt, replace=False))
        engine.apply_churn("svc", ChurnDelta(leaves, cnt), rng)
    return snaps


def run_service_cold(snapshots, seeds, config=CFG):
    """The rebuild-per-epoch loop a non-resident service pays.

    Every epoch re-derives and re-validates the full graph from its
    Hamiltonian cycles (all lattice chunks recomputed) and builds a fresh
    flood kernel — the work the resident engine's incremental patching
    and kernel reuse avoid.
    """
    out = []
    for net in snapshots:
        rebuilt = build_small_world(
            net.n, net.d, h=hgraph_from_cycles(net.h.cycles), k=net.k
        )
        out.extend(run_counting_batch(rebuilt, seeds, config=config))
    return out


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------


def _net():
    return build_small_world(DEFAULT_N, 8, seed=3)


def test_bench_sequential_trials(benchmark):
    net = _net()
    seeds = _seeds(DEFAULT_TRIALS)
    results = benchmark.pedantic(
        run_sequential, args=(net, seeds), rounds=2, iterations=1
    )
    assert len(results) == DEFAULT_TRIALS


def test_bench_batched_trials(benchmark):
    net = _net()
    seeds = _seeds(DEFAULT_TRIALS)
    results = benchmark.pedantic(run_batched, args=(net, seeds), rounds=3, iterations=1)
    assert len(results) == DEFAULT_TRIALS


def test_bench_lossy_batched_trials(benchmark):
    net = _net()
    seeds = _seeds(DEFAULT_TRIALS)
    results = benchmark.pedantic(
        run_lossy_batched, args=(net, seeds), rounds=3, iterations=1
    )
    assert len(results) == DEFAULT_TRIALS


def test_bench_byzantine_batched_trials(benchmark):
    net = _net()
    seeds = _seeds(DEFAULT_TRIALS)
    byz = placement_for_delta(net, 0.5, rng=3)
    results = benchmark.pedantic(
        run_byz_batched, args=(net, seeds, byz, "early-stop"), rounds=3, iterations=1
    )
    assert len(results) == DEFAULT_TRIALS


def test_bench_sweep_fused_trials(benchmark):
    net = _net()
    seeds = _seeds(max(1, DEFAULT_TRIALS // SWEEP_PLACEMENTS))
    placements = _sweep_placements(net)
    results = benchmark.pedantic(
        run_sweep_fused, args=(net, seeds, placements), rounds=2, iterations=1
    )
    assert len(results) == len(SWEEP_STRATEGIES) * len(placements) * len(seeds)


def test_bench_multinet_fused_trials(benchmark):
    nets = _multi_nets()
    seeds = _seeds(max(2, DEFAULT_TRIALS // len(MULTI_NS)))
    results = benchmark.pedantic(
        run_multinet_fused, args=(nets, seeds), rounds=2, iterations=1
    )
    assert len(results) == len(nets) * len(seeds)


def test_bench_unionstack_trials(benchmark):
    nets = _multi_nets()
    seeds = _seeds(max(2, DEFAULT_TRIALS // len(MULTI_NS)))
    results = benchmark.pedantic(
        run_multinet_union, args=(nets, seeds), rounds=2, iterations=1
    )
    assert len(results) == len(nets) * len(seeds)


def test_bench_service_resident_trials(benchmark):
    seeds = _seeds(max(2, DEFAULT_TRIALS // 4))
    results = benchmark.pedantic(
        run_service_resident, args=(256, seeds), rounds=2, iterations=1
    )
    assert len(results) == SERVICE_EPOCHS * len(seeds)


def test_bench_baseline_batched_trials(benchmark):
    net = _net()
    seeds = _seeds(DEFAULT_TRIALS)
    results = benchmark.pedantic(
        run_geometric_max_batch, args=(net, seeds), rounds=3, iterations=1
    )
    assert len(results) == DEFAULT_TRIALS


def test_batched_matches_sequential():
    """Guard: the speed win must not change any reported statistic."""
    net = build_small_world(256, 8, seed=3)
    seeds = _seeds(8)
    seq = run_sequential(net, seeds)
    bat = run_batched(net, seeds)
    for a, b in zip(seq, bat):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert a.meter.as_dict() == b.meter.as_dict()


def test_lossy_batched_matches_per_seed():
    """Guard: fusing lossy trials into one batch changes no statistic."""
    net = build_small_world(256, 8, seed=3)
    seeds = _seeds(8)
    seq = run_lossy_per_seed(net, seeds)
    bat = run_lossy_batched(net, seeds)
    for a, b in zip(seq, bat):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert a.meter.as_dict() == b.meter.as_dict()


def test_sweep_matches_sequential():
    """Guard: the fused (strategy, placement, seed) grid is bit-for-bit."""
    net = build_small_world(256, 8, seed=3)
    seeds = _seeds(2)
    placements = _sweep_placements(net, count=3)
    seq = run_sweep_sequential(net, seeds, placements)
    fus = run_sweep_fused(net, seeds, placements)
    assert len(seq) == len(fus)
    for a, b in zip(seq, fus):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert np.array_equal(a.crashed, b.crashed)
        assert np.array_equal(a.byz, b.byz)
        assert a.meter.as_dict() == b.meter.as_dict()
        assert a.injections_accepted == b.injections_accepted
        assert a.injections_rejected == b.injections_rejected


def test_multinet_matches_per_size_runs():
    """Guard: the padded multi-network batch changes no reported statistic."""
    nets = [build_small_world(n, 8, seed=3) for n in (128, 256, 512)]
    seeds = _seeds(4)
    fused = run_multinet_fused(nets, seeds)
    seq = run_multinet_sequential(nets, seeds)
    loop = run_multinet_batched_loop(nets, seeds)
    for a, b, c in zip(seq, fused, loop):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert np.array_equal(a.decided_phase, c.decided_phase)
        assert a.meter.as_dict() == b.meter.as_dict()
        assert a.meter.as_dict() == c.meter.as_dict()


def test_unionstack_matches_per_size_runs():
    """Guard: the union-stack speed win changes no reported statistic."""
    nets = [build_small_world(n, 8, seed=3) for n in (128, 256, 512)]
    seeds = _seeds(4)
    union = run_multinet_union(nets, seeds)
    loop = run_multinet_batched_loop(nets, seeds)
    for a, b in zip(loop, union):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert a.meter.as_dict() == b.meter.as_dict()


def test_service_resident_matches_cold_rebuilds():
    """Guard: resident-engine epochs equal cold rebuild-per-epoch runs."""
    seeds = _seeds(4)
    cold = run_service_cold(_service_snapshots(256), seeds)
    res = run_service_resident(256, seeds)
    assert len(cold) == len(res) == SERVICE_EPOCHS * len(seeds)
    for a, b in zip(cold, res):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert a.meter.as_dict() == b.meter.as_dict()


def test_byzantine_batched_matches_sequential():
    """Guard: the Byzantine fast path is bit-for-bit too."""
    net = build_small_world(256, 8, seed=3)
    seeds = _seeds(6)
    byz = placement_for_delta(net, 0.5, rng=3)
    for strategy in BYZ_STRATEGIES:
        seq = run_byz_sequential(net, seeds, byz, strategy)
        bat = run_byz_batched(net, seeds, byz, strategy)
        for a, b in zip(seq, bat):
            assert np.array_equal(a.decided_phase, b.decided_phase)
            assert np.array_equal(a.crashed, b.crashed)
            assert a.meter.as_dict() == b.meter.as_dict()
            assert a.injections_accepted == b.injections_accepted
            assert a.injections_rejected == b.injections_rejected


# ----------------------------------------------------------------------
# Standalone smoke / comparison table + JSON trajectory artifact
# ----------------------------------------------------------------------


def _time_best(fn, *args, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=DEFAULT_N)
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS)
    parser.add_argument("--jobs", type=int, default=2, help="shard worker count")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit nonzero unless batched/sequential speedup reaches this "
        "(applied to the honest and every byzantine workload)",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="write the benchmark trajectory (per-workload timings and "
        "speedups) as a JSON artifact",
    )
    args = parser.parse_args(argv)

    net = build_small_world(args.n, 8, seed=3)
    seeds = _seeds(args.trials)
    byz = placement_for_delta(net, 0.5, rng=3)
    run_batched(net, seeds[: min(4, len(seeds))])  # warm caches/plans
    run_byz_batched(net, seeds[: min(4, len(seeds))], byz, "early-stop")

    trajectory: list[dict] = []
    failures: list[str] = []

    def record(workload: str, t_seq: float, t_bat: float, extra=None, gated=True,
               trials: int | None = None):
        trials = args.trials if trials is None else trials
        speedup = t_seq / t_bat
        trajectory.append(
            {
                "workload": workload,
                "sequential_s": t_seq,
                "batched_s": t_bat,
                "speedup": speedup,
                "trials_per_s_sequential": trials / t_seq,
                "trials_per_s_batched": trials / t_bat,
                **(extra or {}),
            }
        )
        if gated and args.min_speedup is not None and speedup < args.min_speedup:
            failures.append(
                f"{workload}: speedup {speedup:.2f}x < required {args.min_speedup}x"
            )
        return speedup

    header = f"{'workload':<28}{'seq':>10}{'batched':>10}{'speedup':>10}"
    print(f"n={args.n}, B={args.trials} trials, best of {args.repeats}")
    print(header)
    print("-" * len(header))

    # --- honest (Algorithm 1) -----------------------------------------
    t_seq, seq = _time_best(run_sequential, net, seeds, repeats=args.repeats)
    t_bat, bat = _time_best(run_batched, net, seeds, repeats=args.repeats)
    for a, b in zip(seq, bat):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert a.meter.as_dict() == b.meter.as_dict()
    sp = record("honest", t_seq, t_bat)
    print(f"{'honest':<28}{t_seq * 1e3:>8.1f}ms{t_bat * 1e3:>8.1f}ms{sp:>9.2f}x")

    t_shd, shd = _time_best(
        run_sharded, net, seeds, CFG, args.jobs, repeats=args.repeats
    )
    for a, c in zip(seq, shd):
        assert np.array_equal(a.decided_phase, c.decided_phase)
    trajectory.append(
        {
            "workload": f"honest-sharded-x{args.jobs}",
            "mode": "sharded",
            "sequential_s": t_seq,
            "sharded_s": t_shd,
            "speedup": t_seq / t_shd,
            "trials_per_s_sequential": args.trials / t_seq,
            "trials_per_s_sharded": args.trials / t_shd,
            "shared_memory_graph": True,
        }
    )
    print(
        f"{'honest-sharded-x' + str(args.jobs):<28}{t_seq * 1e3:>8.1f}ms"
        f"{t_shd * 1e3:>8.1f}ms{t_seq / t_shd:>9.2f}x"
    )

    # Compiled-backend variant: numpy-batched vs numba-batched on the same
    # seeds.  Recorded ONLY when numba is importable — timings are never
    # fabricated on numpy-only boxes; the regression gate treats the
    # committed entry as informational there (``requires`` key).
    t_np_honest = t_bat
    if backend_available("numba"):
        run_batched(net, seeds[: min(4, len(seeds))], backend="numba")  # JIT warm
        t_nb, nb = _time_best(
            run_batched, net, seeds, CFG, "numba", repeats=args.repeats
        )
        for a, b in zip(bat, nb):
            assert np.array_equal(a.decided_phase, b.decided_phase)
            assert a.meter.as_dict() == b.meter.as_dict()
        sp = record(
            "honest-numba",
            t_np_honest,
            t_nb,
            {"requires": "numba", "reference": "numpy-backend batched"},
        )
        print(
            f"{'honest-numba':<28}{t_np_honest * 1e3:>8.1f}ms"
            f"{t_nb * 1e3:>8.1f}ms{sp:>9.2f}x"
        )

    # --- lossy (scenario-pack channel axis) ---------------------------
    run_lossy_batched(net, seeds[: min(4, len(seeds))])  # warm
    t_seq, seq = _time_best(run_lossy_per_seed, net, seeds, repeats=args.repeats)
    t_bat, bat = _time_best(run_lossy_batched, net, seeds, repeats=args.repeats)
    for a, b in zip(seq, bat):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert a.meter.as_dict() == b.meter.as_dict()
    sp = record(
        "lossy",
        t_seq,
        t_bat,
        {
            "reference": "per-seed batch-of-1 under the same channel",
            "loss_p": LOSSY_CHANNEL.loss_p,
            "noise_p": LOSSY_CHANNEL.noise_p,
            "noise_amp": LOSSY_CHANNEL.noise_amp,
        },
    )
    print(f"{'lossy':<28}{t_seq * 1e3:>8.1f}ms{t_bat * 1e3:>8.1f}ms{sp:>9.2f}x")

    # --- byzantine (Algorithm 2, batched adversary fast path) ---------
    for strategy in BYZ_STRATEGIES:
        t_seq, seq = _time_best(
            run_byz_sequential, net, seeds, byz, strategy, repeats=args.repeats
        )
        t_bat, bat = _time_best(
            run_byz_batched, net, seeds, byz, strategy, repeats=args.repeats
        )
        for a, b in zip(seq, bat):
            assert np.array_equal(a.decided_phase, b.decided_phase)
            assert np.array_equal(a.crashed, b.crashed)
            assert a.meter.as_dict() == b.meter.as_dict()
            assert a.injections_accepted == b.injections_accepted
            assert a.injections_rejected == b.injections_rejected
        name = f"byzantine-{strategy}"
        sp = record(name, t_seq, t_bat, {"strategy": strategy, "byz": int(byz.sum())})
        print(f"{name:<28}{t_seq * 1e3:>8.1f}ms{t_bat * 1e3:>8.1f}ms{sp:>9.2f}x")

    # --- fused sweep (strategies x placements x seeds, per-trial masks) --
    sweep_seeds = _seeds(max(1, args.trials // SWEEP_PLACEMENTS))
    sweep_placements = _sweep_placements(net)
    cells = len(SWEEP_STRATEGIES) * len(sweep_placements) * len(sweep_seeds)
    t_seq, seq = _time_best(
        run_sweep_sequential, net, sweep_seeds, sweep_placements, repeats=args.repeats
    )
    t_bat, bat = _time_best(
        run_sweep_fused, net, sweep_seeds, sweep_placements, repeats=args.repeats
    )
    for a, b in zip(seq, bat):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert np.array_equal(a.crashed, b.crashed)
        assert a.meter.as_dict() == b.meter.as_dict()
        assert a.injections_accepted == b.injections_accepted
        assert a.injections_rejected == b.injections_rejected
    sp = record(
        "sweep",
        t_seq,
        t_bat,
        {
            "strategies": list(SWEEP_STRATEGIES),
            "placements": len(sweep_placements),
            "seeds": len(sweep_seeds),
            "cells": cells,
        },
        trials=cells,
    )
    print(f"{'sweep':<28}{t_seq * 1e3:>8.1f}ms{t_bat * 1e3:>8.1f}ms{sp:>9.2f}x")

    # --- multi-network fused sweep (padded size axis) -----------------
    multi_nets = _multi_nets()
    multi_seeds = _seeds(args.trials)
    multi_cells = len(multi_nets) * len(multi_seeds)
    run_multinet_fused(multi_nets, multi_seeds[: min(4, len(multi_seeds))])  # warm
    t_seq, seq = _time_best(
        run_multinet_sequential, multi_nets, multi_seeds, repeats=args.repeats
    )
    t_loop, loop = _time_best(
        run_multinet_batched_loop, multi_nets, multi_seeds, repeats=args.repeats
    )
    t_bat, bat = _time_best(
        run_multinet_fused, multi_nets, multi_seeds, repeats=args.repeats
    )
    for a, b, c in zip(seq, bat, loop):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert np.array_equal(a.decided_phase, c.decided_phase)
        assert a.meter.as_dict() == b.meter.as_dict()
        assert a.meter.as_dict() == c.meter.as_dict()
    sp = record(
        "multi_net",
        t_seq,
        t_bat,
        {"ns": list(MULTI_NS), "seeds_per_n": len(multi_seeds), "cells": multi_cells},
        trials=multi_cells,
    )
    print(f"{'multi_net':<28}{t_seq * 1e3:>8.1f}ms{t_bat * 1e3:>8.1f}ms{sp:>9.2f}x")
    # Secondary, ungated: fused vs the per-size *batched* loop.  The
    # kernel work is identical, so this ratio sits near 1x — recorded to
    # keep the padding overhead visible in the trajectory.
    trajectory.append(
        {
            "workload": "multi_net-vs-batched-loop",
            "mode": "informational",
            "batched_loop_s": t_loop,
            "fused_s": t_bat,
            "speedup": t_loop / t_bat,
            "ns": list(MULTI_NS),
        }
    )
    print(
        f"{'multi_net-vs-batched-loop':<28}{t_loop * 1e3:>8.1f}ms"
        f"{t_bat * 1e3:>8.1f}ms{t_loop / t_bat:>9.2f}x"
    )

    # --- union-stack (zero-padding block-diagonal size sweep) ---------
    t_pad = t_bat  # the padded fused timing from the multi_net section
    run_multinet_union(multi_nets, multi_seeds[: min(4, len(multi_seeds))])  # warm
    t_uni, uni = _time_best(
        run_multinet_union, multi_nets, multi_seeds, repeats=args.repeats
    )
    for a, b in zip(loop, uni):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert a.meter.as_dict() == b.meter.as_dict()
    # Gated against the per-size *batched* loop: the union layout's whole
    # point is to beat the reference the padded path only tied.
    sp = record(
        "union_stack",
        t_loop,
        t_uni,
        {
            "reference": "per-size batched loop",
            "ns": list(MULTI_NS),
            "seeds_per_n": len(multi_seeds),
            "cells": multi_cells,
        },
        trials=multi_cells,
    )
    print(f"{'union_stack':<28}{t_loop * 1e3:>8.1f}ms{t_uni * 1e3:>8.1f}ms{sp:>9.2f}x")
    trajectory.append(
        {
            "workload": "union_stack-vs-padded",
            "mode": "informational",
            "padded_s": t_pad,
            "union_s": t_uni,
            "speedup": t_pad / t_uni,
            "ns": list(MULTI_NS),
        }
    )
    print(
        f"{'union_stack-vs-padded':<28}{t_pad * 1e3:>8.1f}ms"
        f"{t_uni * 1e3:>8.1f}ms{t_pad / t_uni:>9.2f}x"
    )

    # Compiled-backend variant of the union stack: the fused CSR-walk
    # kernel vs the numpy row-gather on the same concatenated layout.
    # Same gating as honest-numba: recorded only when numba can run.
    if backend_available("numba"):
        run_multinet_union(  # JIT warm on the union layout
            multi_nets, multi_seeds[: min(4, len(multi_seeds))], backend="numba"
        )
        t_nbu, nbu = _time_best(
            run_multinet_union, multi_nets, multi_seeds, CFG, "numba",
            repeats=args.repeats,
        )
        for a, b in zip(uni, nbu):
            assert np.array_equal(a.decided_phase, b.decided_phase)
            assert a.meter.as_dict() == b.meter.as_dict()
        sp = record(
            "union_stack-numba",
            t_uni,
            t_nbu,
            {
                "requires": "numba",
                "reference": "numpy-backend union stack",
                "ns": list(MULTI_NS),
                "cells": multi_cells,
            },
            trials=multi_cells,
        )
        print(
            f"{'union_stack-numba':<28}{t_uni * 1e3:>8.1f}ms"
            f"{t_nbu * 1e3:>8.1f}ms{sp:>9.2f}x"
        )

    # --- continuous estimation service (resident engine under churn) --
    svc_epochs = SERVICE_EPOCHS
    svc_queries = svc_epochs * args.trials
    svc_snaps = _service_snapshots(args.n, epochs=svc_epochs)
    run_service_resident(args.n, seeds[: min(4, len(seeds))], epochs=2)  # warm
    t_cold, cold = _time_best(
        run_service_cold, svc_snaps, seeds, repeats=args.repeats
    )
    t_res, res = _time_best(
        run_service_resident, args.n, seeds, svc_epochs, repeats=args.repeats
    )
    for a, b in zip(cold, res):
        assert np.array_equal(a.decided_phase, b.decided_phase)
        assert a.meter.as_dict() == b.meter.as_dict()
    sp = record(
        "service",
        t_cold,
        t_res,
        {
            "reference": "cold rebuild per epoch",
            "epochs": svc_epochs,
            "churn_per_epoch": SERVICE_CHURN,
            "queries": svc_queries,
            "queries_per_s_cold": svc_queries / t_cold,
            "queries_per_s_resident": svc_queries / t_res,
        },
        trials=svc_queries,
    )
    print(f"{'service':<28}{t_cold * 1e3:>8.1f}ms{t_res * 1e3:>8.1f}ms{sp:>9.2f}x")

    # --- baseline estimator (geometric-max) ---------------------------
    t_seq, seq = _time_best(
        lambda: [run_geometric_max(net, seed=s) for s in seeds], repeats=args.repeats
    )
    t_bat, bat = _time_best(run_geometric_max_batch, net, seeds, repeats=args.repeats)
    for a, b in zip(seq, bat):
        assert np.array_equal(a.estimates, b.estimates)
        assert a.meter.as_dict() == b.meter.as_dict()
    # Not speedup-gated: the absolute times are single-digit ms, so the
    # ratio is dominated by fixed per-call costs rather than the kernels.
    sp = record("baseline-geometric-max", t_seq, t_bat, gated=False)
    print(
        f"{'baseline-geometric-max':<28}{t_seq * 1e3:>8.1f}ms"
        f"{t_bat * 1e3:>8.1f}ms{sp:>9.2f}x"
    )

    if args.json:
        artifact = {
            "benchmark": "bench_batch",
            "n": args.n,
            "trials": args.trials,
            "repeats": args.repeats,
            "jobs": args.jobs,
            "equivalence_checked": True,
            "trajectory": trajectory,
        }
        with open(args.json, "w") as fh:
            json.dump(artifact, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

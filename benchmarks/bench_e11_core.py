"""Bench E11: regenerates the Core resilience (Lemma 14) table.

Runs the experiment once under the benchmark clock and asserts its shape
checks; the rendered table is printed so ``--benchmark-only -s`` reproduces
the rows recorded in EXPERIMENTS.md.
"""

from repro.experiments import run_experiment


def test_bench_e11_core(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("E11", "small", 1), rounds=1, iterations=1
    )
    print()
    print(result.render())
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"E11 shape checks failed: {failed}"
